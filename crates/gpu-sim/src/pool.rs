//! A pool of simulated devices for multi-job fleets.
//!
//! A production service multiplexes many jobs over many cards, and the cards
//! are not interchangeable: each has its own memory capacity, its own timing
//! personality and — the part that matters for supervision — its own fault
//! behaviour. A [`DevicePool`] models exactly that: `N` devices, each with a
//! [`DeviceSpec`] (capacity, fault rates, watchdog budget) and a *private*
//! seeded [`TransientFaultPlan`] derived from the pool seed and the device
//! id. Device `d` of a pool with seed `s` always draws the same fault
//! schedule, no matter which jobs land on it or in which order other devices
//! are serviced — the property that makes whole-fleet chaos campaigns
//! replayable bit-for-bit (the same idiom as
//! [`TransientFaultPlan::fate_of`]).
//!
//! The pool itself schedules nothing; it is the hardware inventory. The
//! supervision loop (queues, health states, preemption) lives in the
//! application layer, which owns which sim runs where and threads each
//! device's plan through the launches it hosts.

use crate::driver::DriverModel;
use crate::timing::TimingParams;
use crate::transient::{FaultRates, TransientFaultPlan};
use serde::{Deserialize, Serialize};
use simcore::SplitMix64;

/// The static personality of one pool device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Global-memory capacity in bytes (`None` = unconstrained). Frames that
    /// do not fit degrade down the application's ladder instead of faulting
    /// mid-upload.
    pub capacity: Option<u64>,
    /// Per-launch transient-fault probabilities of this card.
    pub fault_rates: FaultRates,
    /// Warp-instruction watchdog budget per launch (`None` disables).
    pub watchdog_instructions: Option<u64>,
}

impl DeviceSpec {
    /// A healthy, unconstrained device that never faults.
    pub fn quiet() -> DeviceSpec {
        DeviceSpec {
            capacity: None,
            fault_rates: FaultRates::QUIET,
            watchdog_instructions: None,
        }
    }
}

/// One simulated device of a pool: its spec plus its private, seeded
/// transient-fault plan. The plan's launch counter is the device's lifetime
/// launch count — the supervision layer threads it through every kernel the
/// device hosts, so fault fates depend only on `(pool seed, device id,
/// launch index)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SimDevice {
    /// Stable device index within the pool.
    pub id: usize,
    /// Static personality.
    pub spec: DeviceSpec,
    /// The device's seeded fault schedule (launch counter included).
    pub plan: TransientFaultPlan,
    /// Timing personality (the 8800 GTX defaults; kept per device so a
    /// heterogeneous pool can model mixed cards).
    pub timing: TimingParams,
}

/// A fixed inventory of simulated devices sharing one pool seed.
#[derive(Debug, Clone, PartialEq)]
pub struct DevicePool {
    seed: u64,
    devices: Vec<SimDevice>,
}

/// The per-device plan seed: mix the device id into the pool seed so sibling
/// devices draw independent schedules while staying a pure function of
/// `(pool seed, id)`.
fn device_plan_seed(pool_seed: u64, id: usize) -> u64 {
    SplitMix64::mix(pool_seed ^ SplitMix64::mix(id as u64 + 1))
}

impl DevicePool {
    /// Build a pool from explicit per-device specs. Every spec's fault rates
    /// are validated up front; an invalid spec is a typed error naming the
    /// device, never a panic later at launch time.
    pub fn new(seed: u64, specs: Vec<DeviceSpec>) -> Result<DevicePool, String> {
        let mut devices = Vec::with_capacity(specs.len());
        for (id, spec) in specs.into_iter().enumerate() {
            spec.fault_rates
                .validate()
                .map_err(|e| format!("device {id}: {e}"))?;
            devices.push(SimDevice {
                id,
                plan: TransientFaultPlan::new(device_plan_seed(seed, id), spec.fault_rates),
                spec,
                timing: TimingParams::for_driver(DriverModel::Cuda10),
            });
        }
        Ok(DevicePool { seed, devices })
    }

    /// A homogeneous pool: `n` copies of one spec.
    pub fn uniform(seed: u64, n: usize, spec: DeviceSpec) -> Result<DevicePool, String> {
        DevicePool::new(seed, vec![spec; n])
    }

    /// The pool seed every device plan derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// All devices, in id order.
    pub fn devices(&self) -> &[SimDevice] {
        &self.devices
    }

    /// Mutable device access (the supervision layer advances plans here).
    pub fn device_mut(&mut self, id: usize) -> Option<&mut SimDevice> {
        self.devices.get_mut(id)
    }

    /// Device access by id.
    pub fn device(&self, id: usize) -> Option<&SimDevice> {
        self.devices.get(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::LaunchFault;

    fn stormy() -> DeviceSpec {
        DeviceSpec {
            capacity: Some(1 << 20),
            fault_rates: FaultRates {
                bit_flip: 0.2,
                launch_failure: 0.2,
                hang: 0.1,
            },
            watchdog_instructions: Some(1 << 22),
        }
    }

    #[test]
    fn pools_replay_bit_for_bit() {
        let a = DevicePool::uniform(7, 4, stormy()).unwrap();
        let b = DevicePool::uniform(7, 4, stormy()).unwrap();
        for (da, db) in a.devices().iter().zip(b.devices()) {
            assert_eq!(da, db);
            let fates_a: Vec<LaunchFault> = (0..64).map(|k| da.plan.fate_of(k)).collect();
            let fates_b: Vec<LaunchFault> = (0..64).map(|k| db.plan.fate_of(k)).collect();
            assert_eq!(fates_a, fates_b);
        }
    }

    #[test]
    fn sibling_devices_draw_independent_schedules() {
        let pool = DevicePool::uniform(7, 2, stormy()).unwrap();
        let d0: Vec<LaunchFault> = (0..256)
            .map(|k| pool.devices()[0].plan.fate_of(k))
            .collect();
        let d1: Vec<LaunchFault> = (0..256)
            .map(|k| pool.devices()[1].plan.fate_of(k))
            .collect();
        assert_ne!(d0, d1, "device schedules must not be correlated");
    }

    #[test]
    fn invalid_rates_name_the_device() {
        let bad = DeviceSpec {
            fault_rates: FaultRates {
                bit_flip: 0.8,
                launch_failure: 0.8,
                hang: 0.0,
            },
            ..DeviceSpec::quiet()
        };
        let err = DevicePool::new(1, vec![DeviceSpec::quiet(), bad]).unwrap_err();
        assert!(err.starts_with("device 1:"), "{err}");
    }

    #[test]
    fn ids_are_stable_and_ordered() {
        let pool = DevicePool::uniform(3, 3, DeviceSpec::quiet()).unwrap();
        assert_eq!(pool.len(), 3);
        assert!(!pool.is_empty());
        for (i, d) in pool.devices().iter().enumerate() {
            assert_eq!(d.id, i);
            assert_eq!(pool.device(i).unwrap().id, i);
        }
        assert!(pool.device(9).is_none());
    }
}
