//! Functional (untimed) execution of a whole grid.
//!
//! Inside a block, warps run round-robin in barrier-delimited segments (a
//! warp runs until it hits `Sync` or retires, then the next warp runs),
//! which is equivalent to lock-step execution for race-free kernels and
//! keeps the interpreter simple and fast.
//!
//! Blocks run sequentially by default, or across host threads when
//! `GPU_SIM_THREADS` (or an explicit [`run_lowered_full`] thread count) asks
//! for it. The parallel path runs every block against its own
//! [`BlockShard`] write-view and then merges in ascending block-id order, so
//! memory contents, shadow/ECC state, statistics and first-fault coordinates
//! are bit-identical to the sequential executor — see DESIGN.md §15.
//!
//! In functional mode `clock()` reads a per-warp retired-instruction counter
//! — deterministic, and good enough for the membench kernels' *functional*
//! validation (their timing numbers come from the timed engine).

use super::machine::{
    exec_instr, live_lane_mask, pred_mask, BlockCtx, Cursor, FetchItem, LaunchEnv, WARP,
};
use crate::fault::{DeviceError, DeviceResult, FaultKind, FaultPlan};
use crate::ir::lower::{lower, LinStmt, Program};
use crate::ir::Kernel;
use crate::mem::{BlockShard, DeviceMem, GlobalMemory};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

/// Largest block the G80 accepts (threads per block).
pub const MAX_BLOCK: u32 = 512;

/// Largest grid dimension the G80 accepts (blocks per launch).
pub const MAX_GRID: u32 = 65535;

/// Host threads the functional executor spreads blocks across, read from
/// `GPU_SIM_THREADS` once per process (absent/invalid/0/1 → sequential).
/// CI forces the parallel path onto the whole suite by exporting it.
pub fn configured_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("GPU_SIM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    })
}

/// Statistics of a functional run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FunctionalRun {
    /// Warp instructions executed across the whole grid.
    pub warp_instructions: u64,
    /// Block barriers crossed (per block, summed).
    pub barriers: u64,
}

/// Execute every block of the grid functionally against `gmem`.
///
/// `grid` × `block` threads; `params` are the kernel parameter values.
/// Device misuse (bad geometry, out-of-bounds/misaligned/uninitialized
/// accesses, divergent barriers) returns a typed [`DeviceError`] with fault
/// coordinates instead of panicking.
pub fn run_grid(
    kernel: &Kernel,
    grid: u32,
    block: u32,
    params: &[u32],
    gmem: &mut GlobalMemory,
) -> DeviceResult<FunctionalRun> {
    let prog = lower(kernel);
    run_grid_lowered(&prog, grid, block, params, gmem)
}

/// As [`run_grid`], with a fault-injection plan (test harness): matching
/// memory accesses have their effective addresses mutated before execution.
pub fn run_grid_injected(
    kernel: &Kernel,
    grid: u32,
    block: u32,
    params: &[u32],
    gmem: &mut GlobalMemory,
    plan: &FaultPlan,
) -> DeviceResult<FunctionalRun> {
    let prog = lower(kernel);
    run_lowered_inner(&prog, grid, block, params, gmem, Some(plan), None)
}

/// As [`run_grid`], with a step-budget watchdog: if the grid executes more
/// than `budget` warp instructions in total, the launch is killed with
/// [`FaultKind::WatchdogTimeout`] — the simulated analogue of the driver's
/// kernel-execution timeout that turns a hung or runaway kernel into a
/// recoverable error instead of a wedged device.
pub fn run_grid_watchdog(
    kernel: &Kernel,
    grid: u32,
    block: u32,
    params: &[u32],
    gmem: &mut GlobalMemory,
    budget: u64,
) -> DeviceResult<FunctionalRun> {
    let prog = lower(kernel);
    run_lowered_inner(&prog, grid, block, params, gmem, None, Some(budget))
}

/// As [`run_grid`], with every option explicit — fault plan, watchdog and
/// host thread count (the differential tests and `simperf` bench drive the
/// sequential and parallel paths side by side through this).
#[allow(clippy::too_many_arguments)]
pub fn run_grid_full(
    kernel: &Kernel,
    grid: u32,
    block: u32,
    params: &[u32],
    gmem: &mut GlobalMemory,
    plan: Option<&FaultPlan>,
    watchdog: Option<u64>,
    threads: usize,
) -> DeviceResult<FunctionalRun> {
    let prog = lower(kernel);
    run_lowered_full(&prog, grid, block, params, gmem, plan, watchdog, threads)
}

/// As [`run_grid`], for an already-lowered program.
pub fn run_grid_lowered(
    prog: &Program,
    grid: u32,
    block: u32,
    params: &[u32],
    gmem: &mut GlobalMemory,
) -> DeviceResult<FunctionalRun> {
    run_lowered_inner(prog, grid, block, params, gmem, None, None)
}

/// As [`run_grid_injected`], for an already-lowered program (decode-once
/// callers like gravit's frame loop lower each kernel exactly once).
pub fn run_grid_injected_lowered(
    prog: &Program,
    grid: u32,
    block: u32,
    params: &[u32],
    gmem: &mut GlobalMemory,
    plan: &FaultPlan,
) -> DeviceResult<FunctionalRun> {
    run_lowered_inner(prog, grid, block, params, gmem, Some(plan), None)
}

/// As [`run_grid_watchdog`], for an already-lowered program.
pub fn run_grid_watchdog_lowered(
    prog: &Program,
    grid: u32,
    block: u32,
    params: &[u32],
    gmem: &mut GlobalMemory,
    budget: u64,
) -> DeviceResult<FunctionalRun> {
    run_lowered_inner(prog, grid, block, params, gmem, None, Some(budget))
}

pub(crate) fn run_lowered_inner(
    prog: &Program,
    grid: u32,
    block: u32,
    params: &[u32],
    gmem: &mut GlobalMemory,
    plan: Option<&FaultPlan>,
    watchdog: Option<u64>,
) -> DeviceResult<FunctionalRun> {
    run_lowered_full(
        prog,
        grid,
        block,
        params,
        gmem,
        plan,
        watchdog,
        configured_threads(),
    )
}

/// The fully-general entry point: every launch option plus an explicit host
/// thread count. `threads <= 1` (or a one-block grid) runs the classic
/// sequential loop; otherwise blocks execute across `threads` scoped host
/// threads against per-block [`BlockShard`] write-views, and the results are
/// committed in ascending block-id order — bit-identical to the sequential
/// path in memory contents, shadow/ECC state, statistics and first-fault
/// coordinates (the differential proptests in `tests/parallel_difftests.rs`
/// hold this equivalence under random kernels, geometries, injected faults
/// and watchdog budgets).
#[allow(clippy::too_many_arguments)]
pub fn run_lowered_full(
    prog: &Program,
    grid: u32,
    block: u32,
    params: &[u32],
    gmem: &mut GlobalMemory,
    plan: Option<&FaultPlan>,
    watchdog: Option<u64>,
    threads: usize,
) -> DeviceResult<FunctionalRun> {
    validate_launch(grid, block).map_err(|e| e.with_kernel(&prog.name))?;
    let env = LaunchEnv {
        block_dim: block,
        grid_dim: grid,
    };
    if threads <= 1 || grid <= 1 {
        let mut stats = FunctionalRun::default();
        for b in 0..grid {
            run_block(
                prog,
                b,
                block as usize,
                params,
                &env,
                gmem,
                &mut stats,
                plan,
                watchdog,
            )
            .map_err(|e| e.with_kernel(&prog.name))?;
        }
        return Ok(stats);
    }
    run_parallel(
        prog, grid, block, params, &env, gmem, plan, watchdog, threads,
    )
}

/// What one block's isolated (sharded) execution produced, queued for the
/// deterministic merge.
struct BlockOutcome {
    /// Final value of every word the block stored, ascending by address.
    writes: Vec<(u64, u32)>,
    /// The block's own instruction/barrier counts.
    stats: FunctionalRun,
    /// `Ok` if the block retired, or its fault (coordinates already attached
    /// by the warp stepper).
    result: Result<(), DeviceError>,
}

/// Parallel block execution with a sequential-equivalent commit/merge.
///
/// Workers pull block ids from a shared counter and run each block against a
/// fresh [`BlockShard`] (reads see the pre-launch memory plus the block's
/// own writes; CUDA blocks are independent by construction, so that equals
/// what the sequential executor would read). The merge then walks blocks in
/// ascending id order, replaying each block's buffered writes through the
/// real [`GlobalMemory::store_u32`] and summing its stats — so the final
/// memory/shadow/ECC state, the merged [`FunctionalRun`], and the *first*
/// fault in block order are all bit-identical to the sequential loop.
///
/// Watchdog accounting: the sequential executor drains one global budget in
/// block order, so each block runs in isolation against the *full* budget,
/// and the merge re-runs any block whose accumulated count makes the global
/// check ambiguous (`T + c >= budget`) directly against the committed
/// memory with the accumulated count precharged — that re-run *is* the
/// sequential execution of the block, so the kill site and `executed` count
/// are exact by construction.
#[allow(clippy::too_many_arguments)]
fn run_parallel(
    prog: &Program,
    grid: u32,
    block: u32,
    params: &[u32],
    env: &LaunchEnv,
    gmem: &mut GlobalMemory,
    plan: Option<&FaultPlan>,
    watchdog: Option<u64>,
    threads: usize,
) -> DeviceResult<FunctionalRun> {
    let next = AtomicU32::new(0);
    // Lowest block id seen to fault in isolation: the merge is guaranteed to
    // terminate at or before it, so workers skip everything after it.
    let min_terminal = AtomicU32::new(u32::MAX);
    let base: &GlobalMemory = gmem;
    let n_workers = threads.min(grid as usize);
    let mut outcomes: Vec<Option<BlockOutcome>> = (0..grid).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n_workers)
            .map(|_| {
                s.spawn(|| {
                    let mut produced: Vec<(u32, BlockOutcome)> = Vec::new();
                    loop {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b >= grid {
                            break;
                        }
                        if b > min_terminal.load(Ordering::Relaxed) {
                            continue;
                        }
                        let mut shard = BlockShard::new(base);
                        let mut stats = FunctionalRun::default();
                        let result = run_block(
                            prog,
                            b,
                            block as usize,
                            params,
                            env,
                            &mut shard,
                            &mut stats,
                            plan,
                            watchdog,
                        );
                        if result.is_err() {
                            min_terminal.fetch_min(b, Ordering::Relaxed);
                        }
                        produced.push((
                            b,
                            BlockOutcome {
                                writes: shard.into_writes(),
                                stats,
                                result,
                            },
                        ));
                    }
                    produced
                })
            })
            .collect();
        for h in handles {
            for (b, o) in h.join().expect("simulator worker thread panicked") {
                outcomes[b as usize] = Some(o);
            }
        }
    });

    // Deterministic merge, ascending block id.
    let mut total = FunctionalRun::default();
    for (b, slot) in outcomes.iter_mut().enumerate() {
        let b = b as u32;
        // A block whose isolated count would straddle the global watchdog
        // budget (or that was skipped past a terminal block) is replayed
        // sequentially against the committed prefix — exact by construction.
        let replay_sequentially = match slot {
            None => true,
            Some(o) => watchdog.is_some_and(|budget| {
                total.warp_instructions + o.stats.warp_instructions >= budget
            }),
        };
        if replay_sequentially {
            run_block(
                prog,
                b,
                block as usize,
                params,
                env,
                gmem,
                &mut total,
                plan,
                watchdog,
            )
            .map_err(|e| e.with_kernel(&prog.name))?;
            continue;
        }
        let o = slot.take().expect("outcome present");
        // Commit the block's writes — on a fault these are the partial side
        // effects the sequential executor would also have made.
        for (a, v) in o.writes {
            gmem.store_u32(a, v)
                .map_err(|e| e.with_kernel(&prog.name))?;
        }
        match o.result {
            Ok(()) => {
                total.warp_instructions += o.stats.warp_instructions;
                total.barriers += o.stats.barriers;
            }
            Err(e) => return Err(e.with_kernel(&prog.name)),
        }
    }
    Ok(total)
}

/// Validate launch geometry against the G80's limits.
pub fn validate_launch(grid: u32, block: u32) -> DeviceResult<()> {
    if grid == 0 || block == 0 {
        return Err(DeviceError::new(FaultKind::BadLaunch {
            reason: format!("empty launch: grid {grid} × block {block}"),
        }));
    }
    if block > MAX_BLOCK {
        return Err(DeviceError::new(FaultKind::BadLaunch {
            reason: format!("block size {block} exceeds the device limit of {MAX_BLOCK} threads"),
        }));
    }
    if grid > MAX_GRID {
        return Err(DeviceError::new(FaultKind::BadLaunch {
            reason: format!("grid size {grid} exceeds the device limit of {MAX_GRID} blocks"),
        }));
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn run_block<M: DeviceMem>(
    prog: &Program,
    block_id: u32,
    n_threads: usize,
    params: &[u32],
    env: &LaunchEnv,
    gmem: &mut M,
    stats: &mut FunctionalRun,
    plan: Option<&FaultPlan>,
    watchdog: Option<u64>,
) -> DeviceResult<()> {
    let n_warps = n_threads.div_ceil(WARP);
    let mut ctx = BlockCtx::new(prog, block_id, n_threads, params)?;
    let mut cursors: Vec<Cursor> = (0..n_warps)
        .map(|w| Cursor::new(prog, live_lane_mask(n_threads, w)))
        .collect();
    let mut instr_counts = vec![0u64; n_warps];

    // Run warps in barrier-delimited segments.
    loop {
        let mut any_progress = false;
        let mut at_sync = vec![false; n_warps];
        for w in 0..n_warps {
            if cursors[w].done() {
                continue;
            }
            // Run this warp until Sync or completion.
            while let Some(item) = cursors[w].fetch(prog) {
                // Step-budget watchdog: a kernel that retires more warp
                // instructions than its budget is treated as hung and killed
                // — this is what turns an unbounded `while` into a typed,
                // retryable fault instead of a non-terminating simulation.
                if let Some(budget) = watchdog {
                    if stats.warp_instructions >= budget {
                        return Err(DeviceError::new(FaultKind::WatchdogTimeout {
                            budget,
                            executed: stats.warp_instructions,
                        })
                        .with_block(block_id)
                        .with_thread(w as u32 * WARP as u32)
                        .with_instruction(instr_counts[w]));
                    }
                }
                let (stmt, mask) = match item {
                    FetchItem::Stmt(s, m) => (s, m),
                    FetchItem::WhileBackedge { pred, negate, mask } => {
                        // The loop branch: lanes whose predicate still holds
                        // run another pass.
                        let cont = pred_mask(&ctx, w, mask, pred, negate);
                        cursors[w].while_backedge(cont);
                        instr_counts[w] += 1;
                        stats.warp_instructions += 1;
                        any_progress = true;
                        continue;
                    }
                };
                match stmt {
                    LinStmt::I(i) => {
                        exec_instr(
                            i,
                            &mut ctx,
                            w,
                            mask,
                            env,
                            gmem,
                            instr_counts[w],
                            plan,
                            false,
                        )?;
                        instr_counts[w] += 1;
                        stats.warp_instructions += 1;
                        cursors[w].step();
                        any_progress = true;
                    }
                    LinStmt::Bra {
                        pred,
                        negate,
                        target,
                    } => {
                        let m = pred_mask(&ctx, w, mask, *pred, *negate);
                        if m != 0 && m != mask {
                            // Attribute to the first lane disagreeing with
                            // the majority sense of the branch.
                            let lane = (m ^ mask).trailing_zeros();
                            return Err(DeviceError::new(FaultKind::DivergentBranch {
                                mask,
                                taken: m,
                            })
                            .with_block(block_id)
                            .with_thread(w as u32 * WARP as u32 + lane)
                            .with_instruction(instr_counts[w]));
                        }
                        let target = *target;
                        cursors[w].branch(m == mask, target);
                        instr_counts[w] += 1;
                        stats.warp_instructions += 1;
                        any_progress = true;
                    }
                    LinStmt::IfMasked {
                        pred,
                        negate,
                        then_seq,
                        else_seq,
                    } => {
                        let tm = pred_mask(&ctx, w, mask, *pred, *negate);
                        let em = mask & !tm;
                        let (ts, es) = (*then_seq, *else_seq);
                        cursors[w].enter_if(ts, es, tm, em);
                        any_progress = true;
                    }
                    LinStmt::WhileMasked {
                        pred,
                        negate,
                        body_seq,
                    } => {
                        let (p, n, bs) = (*pred, *negate, *body_seq);
                        let m = mask;
                        cursors[w].enter_while(bs, p, n, m);
                        any_progress = true;
                    }
                    LinStmt::Sync => {
                        at_sync[w] = true;
                        break;
                    }
                }
            }
        }
        let done = cursors.iter().all(|c| c.done());
        if done {
            break;
        }
        // Every unfinished warp must be parked at the same barrier.
        let all_at_sync = (0..n_warps).all(|w| cursors[w].done() || at_sync[w]);
        if !(all_at_sync && any_progress) {
            return Err(DeviceError::new(FaultKind::Deadlock {
                reason: "not all warps reached the barrier (a divergent __syncthreads)".into(),
            })
            .with_block(block_id));
        }
        for (w, c) in cursors.iter_mut().enumerate() {
            if !c.done() && at_sync[w] {
                c.step();
                stats.barriers += 1;
                stats.warp_instructions += 1; // bar.sync is an instruction
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{CmpOp, KernelBuilder, MemSpace, Operand};

    /// vec-add: out[i] = a[i] + b[i]
    #[test]
    fn vector_add_whole_grid() {
        let mut b = KernelBuilder::new("vadd");
        let pa = b.param();
        let pb = b.param();
        let po = b.param();
        let i = b.global_thread_index();
        let off = b.imul(i.into(), Operand::ImmU(4));
        let aa = b.iadd(pa.into(), off.into());
        let ab = b.iadd(pb.into(), off.into());
        let ao = b.iadd(po.into(), off.into());
        let va = b.ld(MemSpace::Global, aa, 0, 1)[0];
        let vb = b.ld(MemSpace::Global, ab, 0, 1)[0];
        let s = b.fadd(va.into(), vb.into());
        b.st(MemSpace::Global, ao, 0, vec![s.into()]);
        let k = b.finish();

        let n = 256usize;
        let mut gmem = GlobalMemory::new(1 << 20);
        let xs: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let ys: Vec<f32> = (0..n).map(|i| 2.0 * i as f32).collect();
        let a = gmem.alloc_f32(&xs).unwrap();
        let bb = gmem.alloc_f32(&ys).unwrap();
        let o = gmem.alloc(n as u64 * 4).unwrap();
        run_grid(&k, 4, 64, &[a.0 as u32, bb.0 as u32, o.0 as u32], &mut gmem).unwrap();
        let out = gmem.read_f32(o, n).unwrap();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 3.0 * i as f32, "lane {i}");
        }
    }

    /// Loop + accumulate: out[i] = sum_{j<m} j  (same for all threads).
    #[test]
    fn looped_accumulation() {
        let mut b = KernelBuilder::new("loopsum");
        let po = b.param();
        let m = b.param();
        let i = b.global_thread_index();
        let acc = b.mov(Operand::ImmF(0.0));
        b.for_loop(Operand::ImmU(0), m.into(), 1, |b, j| {
            let jf = b.reg();
            b.emit(crate::ir::Instr::Unary {
                op: crate::ir::UnaryOp::U2F,
                dst: jf,
                a: j.into(),
            });
            b.alu_into(acc, crate::ir::AluOp::FAdd, acc.into(), jf.into());
        });
        let ao = b.mad_u(i.into(), Operand::ImmU(4), po.into());
        b.st(MemSpace::Global, ao, 0, vec![acc.into()]);
        let k = b.finish();

        let mut gmem = GlobalMemory::new(1 << 16);
        let o = gmem.alloc(64 * 4).unwrap();
        run_grid(&k, 1, 64, &[o.0 as u32, 10], &mut gmem).unwrap();
        let out = gmem.read_f32(o, 64).unwrap();
        assert!(out.iter().all(|&v| v == 45.0));
    }

    /// Shared-memory exchange across warps with a barrier: thread t writes
    /// t to smem, then reads the value of (t+1) mod blockDim.
    #[test]
    fn smem_exchange_with_barrier() {
        let mut b = KernelBuilder::new("xchg");
        b.shared_mem(64 * 4);
        let po = b.param();
        let tid = b.special(crate::ir::SpecialReg::TidX);
        let ntid = b.special(crate::ir::SpecialReg::NtidX);
        let my = b.imul(tid.into(), Operand::ImmU(4));
        let tf = b.reg();
        b.emit(crate::ir::Instr::Unary {
            op: crate::ir::UnaryOp::U2F,
            dst: tf,
            a: tid.into(),
        });
        b.st(MemSpace::Shared, my, 0, vec![tf.into()]);
        b.sync();
        let tp1 = b.iadd(tid.into(), Operand::ImmU(1));
        // (t+1) mod blockDim without a mod instruction: if t+1 == ntid → 0.
        let p = b.setp(CmpOp::UEq, tp1.into(), ntid.into());
        let idx = b.reg();
        b.emit(crate::ir::Instr::Mov {
            dst: idx,
            src: tp1.into(),
        });
        b.if_then(p, |b| {
            b.emit(crate::ir::Instr::Mov {
                dst: idx,
                src: Operand::ImmU(0),
            });
        });
        let sa = b.imul(idx.into(), Operand::ImmU(4));
        let v = b.ld(MemSpace::Shared, sa, 0, 1)[0];
        let ao = b.mad_u(tid.into(), Operand::ImmU(4), po.into());
        b.st(MemSpace::Global, ao, 0, vec![v.into()]);
        let k = b.finish();

        let mut gmem = GlobalMemory::new(1 << 16);
        let o = gmem.alloc(64 * 4).unwrap();
        run_grid(&k, 1, 64, &[o.0 as u32], &mut gmem).unwrap();
        let out = gmem.read_f32(o, 64).unwrap();
        for (t, v) in out.iter().enumerate() {
            assert_eq!(*v, ((t + 1) % 64) as f32, "thread {t}");
        }
    }

    /// Masked If: even threads write 1.0, odd threads write 2.0.
    #[test]
    fn divergent_if_writes_both_paths() {
        let mut b = KernelBuilder::new("div");
        let po = b.param();
        let tid = b.special(crate::ir::SpecialReg::TidX);
        let bit = b.alu(crate::ir::AluOp::IAnd, tid.into(), Operand::ImmU(1));
        let p = b.setp(CmpOp::UEq, bit.into(), Operand::ImmU(0));
        let v = b.reg();
        b.if_else(
            p,
            |b| {
                b.emit(crate::ir::Instr::Mov {
                    dst: v,
                    src: Operand::ImmF(1.0),
                });
            },
            |b| {
                b.emit(crate::ir::Instr::Mov {
                    dst: v,
                    src: Operand::ImmF(2.0),
                });
            },
        );
        let ao = b.mad_u(tid.into(), Operand::ImmU(4), po.into());
        b.st(MemSpace::Global, ao, 0, vec![v.into()]);
        let k = b.finish();

        let mut gmem = GlobalMemory::new(1 << 16);
        let o = gmem.alloc(32 * 4).unwrap();
        run_grid(&k, 1, 32, &[o.0 as u32], &mut gmem).unwrap();
        let out = gmem.read_f32(o, 32).unwrap();
        for (t, v) in out.iter().enumerate() {
            assert_eq!(*v, if t % 2 == 0 { 1.0 } else { 2.0 });
        }
    }

    /// G80 grid-dimension cap: 65535 blocks is a legal launch, 65536 is a
    /// typed `BadLaunch` — previously any grid size silently launched.
    #[test]
    fn grid_limit_boundary() {
        assert!(validate_launch(MAX_GRID, 64).is_ok());
        let e = validate_launch(MAX_GRID + 1, 64).unwrap_err();
        match e.kind {
            FaultKind::BadLaunch { reason } => {
                assert!(reason.contains("65536"), "reason names the size: {reason}");
                assert!(reason.contains("65535"), "reason names the limit: {reason}");
            }
            k => panic!("wrong kind {k:?}"),
        }
        // And through the launch wrapper, with the kernel name attached.
        let mut b = KernelBuilder::new("toolarge");
        let _p = b.param();
        let k = b.finish();
        let mut gmem = GlobalMemory::new(64);
        let e = run_grid(&k, MAX_GRID + 1, 32, &[0], &mut gmem).unwrap_err();
        assert!(matches!(e.kind, FaultKind::BadLaunch { .. }));
        assert_eq!(e.site.kernel.as_deref(), Some("toolarge"));
    }

    /// The parallel path commits blocks in id order: memory and stats equal
    /// the sequential run bit-for-bit (the broad equivalence lives in
    /// `tests/parallel_difftests.rs`; this is the in-crate smoke check).
    #[test]
    fn parallel_matches_sequential_smoke() {
        let mut b = KernelBuilder::new("pfill");
        let po = b.param();
        let i = b.global_thread_index();
        let ao = b.mad_u(i.into(), Operand::ImmU(4), po.into());
        b.st(MemSpace::Global, ao, 0, vec![i.into()]);
        let k = b.finish();
        let n = 8 * 64;
        let run = |threads: usize| {
            let mut gmem = GlobalMemory::new(1 << 20);
            let o = gmem.alloc(n as u64 * 4).unwrap();
            let stats =
                run_grid_full(&k, 8, 64, &[o.0 as u32], &mut gmem, None, None, threads).unwrap();
            (gmem.download(o, n as u64 * 4).unwrap(), stats)
        };
        let (seq_mem, seq_stats) = run(1);
        for threads in [2, 8] {
            let (par_mem, par_stats) = run(threads);
            assert_eq!(seq_mem, par_mem, "{threads} threads");
            assert_eq!(seq_stats, par_stats, "{threads} threads");
        }
    }

    /// Partial last warp: 40 threads = one full warp + 8 lanes.
    #[test]
    fn partial_warp_block() {
        let mut b = KernelBuilder::new("partial");
        let po = b.param();
        let i = b.global_thread_index();
        let ao = b.mad_u(i.into(), Operand::ImmU(4), po.into());
        let one = b.mov(Operand::ImmF(1.0));
        b.st(MemSpace::Global, ao, 0, vec![one.into()]);
        let k = b.finish();
        let mut gmem = GlobalMemory::new(1 << 12);
        let o = gmem.alloc(40 * 4).unwrap();
        run_grid(&k, 1, 40, &[o.0 as u32], &mut gmem).unwrap();
        assert!(gmem.read_f32(o, 40).unwrap().iter().all(|&v| v == 1.0));
    }
}

#[cfg(test)]
mod while_tests {
    use super::*;
    use crate::ir::{AluOp, CmpOp, KernelBuilder, MemSpace, Operand};

    /// Collatz step-count per thread: genuinely divergent iteration counts.
    /// out[tid] = number of steps for (tid+1) to reach 1.
    fn collatz_kernel() -> crate::ir::Kernel {
        let mut b = KernelBuilder::new("collatz");
        let out = b.param();
        let tid = b.special(crate::ir::SpecialReg::TidX);
        let n = b.iadd(tid.into(), Operand::ImmU(1));
        let steps = b.mov(Operand::ImmU(0));
        // do { if n != 1 { n = odd ? 3n+1 : n/2 (shr via and trick) ; steps++ } } while (n != 1)
        b.do_while(|b| {
            let not_one = b.setp(CmpOp::UNe, n.into(), Operand::ImmU(1));
            b.if_then(not_one, |b| {
                let bit = b.alu(AluOp::IAnd, n.into(), Operand::ImmU(1));
                let podd = b.setp(CmpOp::UEq, bit.into(), Operand::ImmU(1));
                b.if_else(
                    podd,
                    |b| {
                        // n = 3n + 1
                        let t = b.mad_u(n.into(), Operand::ImmU(3), Operand::ImmU(1));
                        b.emit(crate::ir::Instr::Mov {
                            dst: n,
                            src: t.into(),
                        });
                    },
                    |b| {
                        // n = n / 2 — no shift-right op; n/2 == (n - bit)/2 via
                        // multiply-high is overkill, so use a subtract loop…
                        // simpler: n even ⇒ n = n * 0x8000_0001? No — emulate
                        // with IShl-based doubling comparison is silly; add a
                        // dedicated halving using IAnd+IShl identities is not
                        // available, so divide by repeated subtraction is too
                        // slow. Instead: n/2 for even n == (n >> 1); we lack
                        // shr, so precompute via u32 multiply by 0x80000000?
                        // mad.lo gives low 32 bits (n * 2^31 mod 2^32) — not
                        // the high half. Use float conversion: exact for the
                        // magnitudes in this test (n < 2^24).
                        let f = b.reg();
                        b.emit(crate::ir::Instr::Unary {
                            op: crate::ir::UnaryOp::U2F,
                            dst: f,
                            a: n.into(),
                        });
                        let h = b.fmul(f.into(), Operand::ImmF(0.5));
                        b.emit(crate::ir::Instr::Unary {
                            op: crate::ir::UnaryOp::F2U,
                            dst: n,
                            a: h.into(),
                        });
                    },
                );
                b.alu_into(steps, AluOp::IAdd, steps.into(), Operand::ImmU(1));
            });
            b.setp(CmpOp::UNe, n.into(), Operand::ImmU(1))
        });
        let oaddr = b.mad_u(tid.into(), Operand::ImmU(4), out.into());
        b.st(MemSpace::Global, oaddr, 0, vec![steps.into()]);
        b.finish()
    }

    fn collatz_steps(mut n: u32) -> u32 {
        let mut s = 0;
        while n != 1 {
            n = if n % 2 == 1 { 3 * n + 1 } else { n / 2 };
            s += 1;
        }
        s
    }

    #[test]
    fn divergent_while_computes_collatz_per_lane() {
        let k = collatz_kernel();
        let mut gmem = GlobalMemory::new(1 << 16);
        let out = gmem.alloc(64 * 4).unwrap();
        run_grid(&k, 1, 64, &[out.0 as u32], &mut gmem).unwrap();
        for t in 0..64u64 {
            let got = u32::from_le_bytes(
                gmem.download(crate::mem::DevicePtr(out.0 + 4 * t), 4)
                    .unwrap()
                    .try_into()
                    .unwrap(),
            );
            assert_eq!(got, collatz_steps(t as u32 + 1), "thread {t}");
        }
    }

    #[test]
    fn timed_while_charges_until_the_slowest_lane() {
        use crate::exec::timed::time_resident;
        use crate::timing::TimingParams;
        use crate::{DeviceConfig, DriverModel};
        let k = collatz_kernel();
        let dev = DeviceConfig::g8800gtx();
        let tp = TimingParams::for_driver(DriverModel::Cuda10);
        let mut gmem = GlobalMemory::new(1 << 16);
        let out = gmem.alloc(64 * 4).unwrap();
        let run = time_resident(
            &k,
            &[0],
            64,
            1,
            &[out.0 as u32],
            &mut gmem,
            &dev,
            DriverModel::Cuda10,
            &tp,
        )
        .unwrap();
        // Functional result still correct under the timed engine.
        let got = u32::from_le_bytes(
            gmem.download(crate::mem::DevicePtr(out.0), 4)
                .unwrap()
                .try_into()
                .unwrap(),
        );
        assert_eq!(got, collatz_steps(1));
        assert!(run.cycles > 0);
        // The warp executes max-lane passes: thread 26 (n=27) needs 111 steps,
        // so at least 111 body passes were issued by its warp.
        assert!(
            run.warp_instructions > 111,
            "divergence must serialize the warp"
        );
    }
}
