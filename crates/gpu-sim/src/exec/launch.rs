//! Launch configuration and grid-level time estimation.
//!
//! The timed engine simulates *one SM's resident blocks*. A full launch of
//! `G` blocks on a device with `S` SMs and `B` resident blocks per SM runs as
//! `ceil(G / (S·B))` waves of `B` blocks per SM, so the full-grid estimate is
//! `waves × cycles(resident wave)`. For kernels whose per-thread work scales
//! with a parameter (the O(n²) force kernel's tile loop), the benchmarks
//! simulate two smaller configurations and extrapolate the steady state with
//! a linear fit (see [`extrapolate_linear`]).

use crate::device::DeviceConfig;
use crate::driver::DriverModel;
use crate::exec::timed::{time_resident, TimedRun};
use crate::fault::{DeviceError, DeviceResult, FaultKind};
use crate::ir::Kernel;
use crate::mem::GlobalMemory;
use crate::occupancy::{occupancy, Occupancy};
use crate::timing::TimingParams;
use simcore::linear_fit;

/// A 1-D kernel launch shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of blocks.
    pub grid: u32,
    /// Threads per block.
    pub block: u32,
}

impl LaunchConfig {
    /// Blocks × threads.
    pub fn total_threads(&self) -> u64 {
        self.grid as u64 * self.block as u64
    }

    /// The launch covering `n` elements with one thread each (grid rounded
    /// up; kernels pad their data, see the layouts crate).
    pub fn covering(n: u32, block: u32) -> LaunchConfig {
        assert!(block > 0);
        LaunchConfig {
            grid: n.div_ceil(block).max(1),
            block,
        }
    }
}

/// Grid-level timing estimate assembled from a resident-wave simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct GridEstimate {
    /// Cycles for one wave of resident blocks on one SM.
    pub cycles_per_wave: u64,
    /// Number of waves needed to drain the grid.
    pub waves: u64,
    /// Total kernel cycles.
    pub total_cycles: u64,
    /// Kernel wall time at the device clock.
    pub seconds: f64,
    /// The occupancy used.
    pub occupancy: Occupancy,
    /// Stats of the simulated wave.
    pub wave_stats: TimedRun,
}

/// Estimate the full-grid execution time of `kernel` by simulating one
/// resident wave on one SM and scaling.
///
/// `regs_per_thread` feeds the occupancy calculator (use
/// [`crate::ir::regalloc::register_demand`]). Functional side effects of the
/// simulated wave land in `gmem`.
#[allow(clippy::too_many_arguments)]
pub fn estimate_grid(
    kernel: &Kernel,
    launch: LaunchConfig,
    regs_per_thread: u32,
    params: &[u32],
    gmem: &mut GlobalMemory,
    dev: &DeviceConfig,
    driver: DriverModel,
    tp: &TimingParams,
) -> DeviceResult<GridEstimate> {
    let occ = occupancy(dev, launch.block, regs_per_thread, kernel.smem_bytes);
    let resident_n = occ.active_blocks.min(launch.grid);
    if resident_n == 0 {
        return Err(DeviceError::new(FaultKind::BadLaunch {
            reason: format!(
                "kernel cannot be made resident: {} threads/block with {regs_per_thread} regs/thread and {} B smem fits zero blocks per SM",
                launch.block, kernel.smem_bytes
            ),
        })
        .with_kernel(&kernel.name));
    }
    let resident: Vec<u32> = (0..resident_n).collect();
    let wave = time_resident(
        kernel,
        &resident,
        launch.block,
        launch.grid,
        params,
        gmem,
        dev,
        driver,
        tp,
    )?;
    let blocks_per_wave = (dev.num_sms * resident_n) as u64;
    let waves = (launch.grid as u64).div_ceil(blocks_per_wave);
    let total_cycles = wave.cycles * waves;
    Ok(GridEstimate {
        cycles_per_wave: wave.cycles,
        waves,
        total_cycles,
        seconds: total_cycles as f64 / dev.clock_hz,
        occupancy: occ,
        wave_stats: wave,
    })
}

/// Extrapolate a cost that is affine in a size parameter: measure at two (or
/// more) sizes, fit `cycles ≈ a + b·size`, and evaluate at `target`.
///
/// A negative fitted slope (a sign the measurements are not in the
/// steady-state regime) is a [`FaultKind::BadConfig`] error.
pub fn extrapolate_linear(measured: &[(u64, u64)], target: u64) -> DeviceResult<u64> {
    let pts: Vec<(f64, f64)> = measured
        .iter()
        .map(|&(x, y)| (x as f64, y as f64))
        .collect();
    let (a, b) = linear_fit(&pts);
    if b < 0.0 {
        return Err(DeviceError::new(FaultKind::BadConfig {
            reason: format!("negative marginal cost ({b}) — measurements not in steady state"),
        }));
    }
    let v = a + b * target as f64;
    Ok(v.max(0.0).round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{KernelBuilder, MemSpace, Operand};

    #[test]
    fn covering_launch_rounds_up() {
        let l = LaunchConfig::covering(1000, 128);
        assert_eq!(l.grid, 8);
        assert_eq!(l.total_threads(), 1024);
        assert_eq!(LaunchConfig::covering(1, 128).grid, 1);
    }

    #[test]
    fn extrapolation_recovers_affine_cost() {
        let measured = vec![(4u64, 1000u64), (8, 1800), (16, 3400)];
        assert_eq!(extrapolate_linear(&measured, 32).unwrap(), 6600);
    }

    #[test]
    fn extrapolation_rejects_negative_slope() {
        let err = extrapolate_linear(&[(4, 1000), (8, 500)], 100).unwrap_err();
        assert!(matches!(
            err.kind,
            crate::fault::FaultKind::BadConfig { .. }
        ));
    }

    #[test]
    fn estimate_grid_scales_with_waves() {
        let mut b = KernelBuilder::new("touch");
        let po = b.param();
        let i = b.global_thread_index();
        let ao = b.mad_u(i.into(), Operand::ImmU(4), po.into());
        let one = b.mov(Operand::ImmF(1.0));
        b.st(MemSpace::Global, ao, 0, vec![one.into()]);
        let k = b.finish();
        let dev = DeviceConfig::g8800gtx();
        let tp = TimingParams::for_driver(DriverModel::Cuda10);

        let run = |grid: u32| {
            let mut gmem = GlobalMemory::new(64 << 20);
            let o = gmem.alloc(grid as u64 * 128 * 4).unwrap();
            estimate_grid(
                &k,
                LaunchConfig { grid, block: 128 },
                10,
                &[o.0 as u32],
                &mut gmem,
                &dev,
                DriverModel::Cuda10,
                &tp,
            )
            .unwrap()
        };
        let small = run(16);
        let big = run(16 * 64);
        assert!(big.waves > small.waves);
        assert!(big.total_cycles > small.total_cycles);
        assert!(big.seconds > small.seconds);
    }
}
