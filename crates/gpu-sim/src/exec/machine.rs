//! Shared machine state and instruction semantics.
//!
//! One warp-step function ([`exec_instr`]) implements the meaning of every
//! instruction for all 32 lanes of a warp under an active mask. Both the
//! functional and the timed executor call it, so values, addresses and
//! side effects are identical in both modes by construction.

use crate::coalesce::AccessWidth;
use crate::fault::{DeviceError, DeviceResult, FaultKind, FaultPlan};
use crate::ir::lower::{LinStmt, Program};
use crate::ir::{AluOp, CmpOp, Instr, MemSpace, Operand, Pred, Reg, SpecialReg, UnaryOp};
use crate::mem::DeviceMem;

/// Warp width — fixed at 32 for every CUDA device.
pub const WARP: usize = 32;

/// Launch-wide environment visible to special registers.
#[derive(Debug, Clone, Copy)]
pub struct LaunchEnv {
    /// `blockDim.x`
    pub block_dim: u32,
    /// `gridDim.x`
    pub grid_dim: u32,
}

/// Mutable state of one thread block.
#[derive(Debug)]
pub struct BlockCtx {
    /// `blockIdx.x`
    pub block_id: u32,
    /// Threads in this block.
    pub n_threads: usize,
    n_regs: usize,
    n_preds: usize,
    /// Register file: `regs[thread * n_regs + reg]`, raw 32-bit values.
    regs: Vec<u32>,
    /// Predicate file.
    preds: Vec<bool>,
    /// Shared memory bytes.
    pub smem: Vec<u8>,
}

impl BlockCtx {
    /// Create block state with parameters bound to the first registers of
    /// every thread (as the lowered ABI requires). A parameter-count mismatch
    /// is a [`FaultKind::BadLaunch`].
    pub fn new(
        prog: &Program,
        block_id: u32,
        n_threads: usize,
        params: &[u32],
    ) -> DeviceResult<Self> {
        if params.len() != prog.n_params as usize {
            return Err(DeviceError::new(FaultKind::BadLaunch {
                reason: format!(
                    "kernel expects {} parameters, launch passed {}",
                    prog.n_params,
                    params.len()
                ),
            })
            .with_kernel(&prog.name)
            .with_block(block_id));
        }
        let n_regs = prog.n_regs as usize;
        let n_preds = prog.n_preds as usize;
        let mut regs = vec![0u32; n_threads * n_regs];
        for t in 0..n_threads {
            regs[t * n_regs..t * n_regs + params.len()].copy_from_slice(params);
        }
        Ok(BlockCtx {
            block_id,
            n_threads,
            n_regs,
            n_preds,
            regs,
            preds: vec![false; n_threads * n_preds.max(1)],
            smem: vec![0u8; prog.smem_bytes as usize],
        })
    }

    /// Read a register of a thread.
    #[inline]
    pub fn reg(&self, t: usize, r: Reg) -> u32 {
        self.regs[t * self.n_regs + r.0 as usize]
    }

    /// Write a register of a thread.
    #[inline]
    pub fn set_reg(&mut self, t: usize, r: Reg, v: u32) {
        self.regs[t * self.n_regs + r.0 as usize] = v;
    }

    /// Read a predicate of a thread.
    #[inline]
    pub fn pred(&self, t: usize, p: Pred) -> bool {
        self.preds[t * self.n_preds.max(1) + p.0 as usize]
    }

    #[inline]
    fn set_pred(&mut self, t: usize, p: Pred, v: bool) {
        self.preds[t * self.n_preds.max(1) + p.0 as usize] = v;
    }

    /// Validate a shared-memory word access. Shared memory is zero-initialized
    /// on real hardware-adjacent semantics here (no poison tracking): the
    /// sanitizer checks alignment and bounds only.
    fn smem_check(&self, addr: u64) -> DeviceResult<()> {
        if !addr.is_multiple_of(4) {
            return Err(DeviceError::new(FaultKind::Misaligned {
                space: MemSpace::Shared,
                addr,
                width: 4,
            }));
        }
        if addr + 4 > self.smem.len() as u64 {
            return Err(DeviceError::new(FaultKind::OutOfBounds {
                space: MemSpace::Shared,
                addr,
                width: 4,
                limit: self.smem.len() as u64,
                redzone: false,
            }));
        }
        Ok(())
    }

    fn smem_load_u32(&self, addr: u64) -> DeviceResult<u32> {
        self.smem_check(addr)?;
        let a = addr as usize;
        Ok(u32::from_le_bytes(
            self.smem[a..a + 4].try_into().expect("4-byte slice"),
        ))
    }

    fn smem_store_u32(&mut self, addr: u64, v: u32) -> DeviceResult<()> {
        self.smem_check(addr)?;
        let a = addr as usize;
        self.smem[a..a + 4].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }
}

/// Description of the memory traffic of one executed warp instruction, for
/// the timed engine's coalescer/bank models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemTrace {
    /// Space accessed.
    pub space: MemSpace,
    /// `true` for a load (creates a register dependency), `false` for a store.
    pub is_load: bool,
    /// Access width.
    pub width: AccessWidth,
    /// Per-lane byte addresses (`None` = lane inactive), 32 entries.
    pub addrs: Vec<Option<u64>>,
}

/// The block-local thread indices selected by an active-lane mask — the
/// zero-allocation replacement for collecting lanes into a `Vec` on every
/// executed instruction (the functional hot loop's biggest malloc source).
#[inline]
fn active_lanes(mask: u32, warp: usize, n_threads: usize) -> impl Iterator<Item = usize> {
    (0..WARP)
        .filter(move |l| mask & (1 << l) != 0)
        .map(move |l| warp * WARP + l)
        .filter(move |t| *t < n_threads)
}

/// Execute one instruction for a warp.
///
/// `warp` is the warp index within the block, `mask` the active-lane mask,
/// `clock_value` what a `Clock` instruction should read. With `want_trace`
/// set, returns the memory trace if the instruction touched memory (the
/// timed engine feeds it to the coalescer/bank models); the functional
/// executor passes `false` and skips the per-lane address bookkeeping
/// entirely. A memory fault carries the exact (block, thread, instruction)
/// coordinates of the offending lane.
///
/// Generic over [`DeviceMem`] so the same semantics run against the real
/// [`crate::mem::GlobalMemory`] (sequential path) and against per-block
/// [`crate::mem::BlockShard`] write-views (parallel path).
///
/// `plan` is the fault-injection hook: when set, the effective address of a
/// matching (block, thread, instruction) access is mutated before the access
/// is performed (test harness only — production paths pass `None`).
#[allow(clippy::too_many_arguments)]
pub fn exec_instr<M: DeviceMem>(
    i: &Instr,
    ctx: &mut BlockCtx,
    warp: usize,
    mask: u32,
    env: &LaunchEnv,
    gmem: &mut M,
    clock_value: u64,
    plan: Option<&FaultPlan>,
    want_trace: bool,
) -> DeviceResult<Option<MemTrace>> {
    let opv = |ctx: &BlockCtx, t: usize, o: &Operand| -> u32 {
        match o {
            Operand::R(r) => ctx.reg(t, *r),
            Operand::ImmU(v) => *v,
            Operand::ImmF(f) => f.to_bits(),
        }
    };
    match i {
        Instr::Mov { dst, src } => {
            for t in active_lanes(mask, warp, ctx.n_threads) {
                let v = opv(ctx, t, src);
                ctx.set_reg(t, *dst, v);
            }
            Ok(None)
        }
        Instr::Special { dst, sr } => {
            for t in active_lanes(mask, warp, ctx.n_threads) {
                let v = match sr {
                    SpecialReg::TidX => t as u32,
                    SpecialReg::CtaidX => ctx.block_id,
                    SpecialReg::NtidX => env.block_dim,
                    SpecialReg::NctaidX => env.grid_dim,
                };
                ctx.set_reg(t, *dst, v);
            }
            Ok(None)
        }
        Instr::Alu { op, dst, a, b } => {
            for t in active_lanes(mask, warp, ctx.n_threads) {
                let x = opv(ctx, t, a);
                let y = opv(ctx, t, b);
                let v = alu(*op, x, y);
                ctx.set_reg(t, *dst, v);
            }
            Ok(None)
        }
        Instr::Mad {
            float,
            dst,
            a,
            b,
            c,
        } => {
            for t in active_lanes(mask, warp, ctx.n_threads) {
                let x = opv(ctx, t, a);
                let y = opv(ctx, t, b);
                let z = opv(ctx, t, c);
                let v = if *float {
                    // G80 MAD truncates the intermediate product; modern fma
                    // differs in the last ulp. We use mul+add like the CPU
                    // reference so functional comparisons are exact.
                    (f32::from_bits(x) * f32::from_bits(y) + f32::from_bits(z)).to_bits()
                } else {
                    x.wrapping_mul(y).wrapping_add(z)
                };
                ctx.set_reg(t, *dst, v);
            }
            Ok(None)
        }
        Instr::Unary { op, dst, a } => {
            for t in active_lanes(mask, warp, ctx.n_threads) {
                let x = opv(ctx, t, a);
                let v = match op {
                    UnaryOp::FRsqrt => {
                        let f = f32::from_bits(x);
                        (1.0 / f.sqrt()).to_bits()
                    }
                    UnaryOp::FNeg => (-f32::from_bits(x)).to_bits(),
                    UnaryOp::U2F => (x as f32).to_bits(),
                    UnaryOp::F2U => f32::from_bits(x) as u32,
                };
                ctx.set_reg(t, *dst, v);
            }
            Ok(None)
        }
        Instr::Setp { dst, cmp, a, b } => {
            for t in active_lanes(mask, warp, ctx.n_threads) {
                let x = opv(ctx, t, a);
                let y = opv(ctx, t, b);
                let v = match cmp {
                    CmpOp::ULt => x < y,
                    CmpOp::UGe => x >= y,
                    CmpOp::UEq => x == y,
                    CmpOp::UNe => x != y,
                    CmpOp::FLt => f32::from_bits(x) < f32::from_bits(y),
                };
                ctx.set_pred(t, *dst, v);
            }
            Ok(None)
        }
        Instr::Ld {
            dsts,
            space,
            base,
            offset,
        } => {
            let width = AccessWidth::from_bytes(4 * dsts.len() as u32).expect("load width");
            let n_words = dsts.len() as u64;
            let mut addrs = if want_trace {
                vec![None; WARP]
            } else {
                Vec::new()
            };
            let bid = ctx.block_id;
            for t in active_lanes(mask, warp, ctx.n_threads) {
                let mut addr = ctx.reg(t, *base).wrapping_add(*offset) as u64;
                if let Some(p) = plan {
                    addr = p.mutate(bid, t as u32, clock_value, addr);
                }
                if want_trace {
                    addrs[t % WARP] = Some(addr);
                }
                // A vector access must be naturally aligned as a whole; the
                // per-word loop below would only catch word misalignment.
                let fault_at = move |e: DeviceError| {
                    e.with_block(bid)
                        .with_thread(t as u32)
                        .with_instruction(clock_value)
                };
                if matches!(space, MemSpace::Global | MemSpace::Texture)
                    && !addr.is_multiple_of(4 * n_words)
                {
                    return Err(fault_at(DeviceError::new(FaultKind::Misaligned {
                        space: *space,
                        addr,
                        width: 4 * n_words,
                    })));
                }
                for (w, d) in dsts.iter().enumerate() {
                    let v = match space {
                        MemSpace::Global | MemSpace::Texture => {
                            gmem.load_u32(addr + 4 * w as u64).map_err(fault_at)?
                        }
                        MemSpace::Shared => {
                            ctx.smem_load_u32(addr + 4 * w as u64).map_err(fault_at)?
                        }
                    };
                    ctx.set_reg(t, *d, v);
                }
            }
            Ok(want_trace.then_some(MemTrace {
                space: *space,
                is_load: true,
                width,
                addrs,
            }))
        }
        Instr::St {
            srcs,
            space,
            base,
            offset,
        } => {
            let width = AccessWidth::from_bytes(4 * srcs.len() as u32).expect("store width");
            let n_words = srcs.len() as u64;
            let mut addrs = if want_trace {
                vec![None; WARP]
            } else {
                Vec::new()
            };
            let bid = ctx.block_id;
            for t in active_lanes(mask, warp, ctx.n_threads) {
                let mut addr = ctx.reg(t, *base).wrapping_add(*offset) as u64;
                if let Some(p) = plan {
                    addr = p.mutate(bid, t as u32, clock_value, addr);
                }
                if want_trace {
                    addrs[t % WARP] = Some(addr);
                }
                let fault_at = move |e: DeviceError| {
                    e.with_block(bid)
                        .with_thread(t as u32)
                        .with_instruction(clock_value)
                };
                if *space == MemSpace::Global && !addr.is_multiple_of(4 * n_words) {
                    return Err(fault_at(DeviceError::new(FaultKind::Misaligned {
                        space: *space,
                        addr,
                        width: 4 * n_words,
                    })));
                }
                for (w, s) in srcs.iter().enumerate() {
                    let v = opv(ctx, t, s);
                    match space {
                        MemSpace::Global => {
                            gmem.store_u32(addr + 4 * w as u64, v).map_err(fault_at)?
                        }
                        MemSpace::Shared => ctx
                            .smem_store_u32(addr + 4 * w as u64, v)
                            .map_err(fault_at)?,
                        MemSpace::Texture => {
                            return Err(fault_at(DeviceError::new(FaultKind::ReadOnlyWrite {
                                space: MemSpace::Texture,
                                addr,
                            })));
                        }
                    }
                }
            }
            Ok(want_trace.then_some(MemTrace {
                space: *space,
                is_load: false,
                width,
                addrs,
            }))
        }
        Instr::Clock { dst } => {
            for t in active_lanes(mask, warp, ctx.n_threads) {
                ctx.set_reg(t, *dst, clock_value as u32);
            }
            Ok(None)
        }
    }
}

fn alu(op: AluOp, x: u32, y: u32) -> u32 {
    let (fx, fy) = (f32::from_bits(x), f32::from_bits(y));
    match op {
        AluOp::FAdd => (fx + fy).to_bits(),
        AluOp::FSub => (fx - fy).to_bits(),
        AluOp::FMul => (fx * fy).to_bits(),
        AluOp::FMin => fx.min(fy).to_bits(),
        AluOp::FMax => fx.max(fy).to_bits(),
        AluOp::IAdd => x.wrapping_add(y),
        AluOp::ISub => x.wrapping_sub(y),
        AluOp::IMul => x.wrapping_mul(y),
        AluOp::IShl => x.wrapping_shl(y),
        AluOp::IAnd => x & y,
        AluOp::IMin => x.min(y),
    }
}

// ---------------------------------------------------------------------------
// Warp cursor over the lowered program
// ---------------------------------------------------------------------------

/// One stack frame of a warp's position in the program arena.
#[derive(Debug, Clone, Copy)]
pub struct Frame {
    /// Sequence index in the arena.
    pub seq: usize,
    /// Next statement index within the sequence.
    pub idx: usize,
    /// Active-lane mask for this frame.
    pub mask: u32,
    /// For a divergent-loop body frame: the continuation predicate tested at
    /// the bottom of each pass.
    pub while_of: Option<(Pred, bool)>,
}

/// A warp's resumable position in a lowered program.
#[derive(Debug, Clone)]
pub struct Cursor {
    frames: Vec<Frame>,
}

/// What [`Cursor::fetch`] yields.
#[derive(Debug)]
pub enum FetchItem<'a> {
    /// A lowered statement to handle under the given mask.
    Stmt(&'a LinStmt, u32),
    /// The bottom of a divergent loop pass: the executor must evaluate the
    /// predicate under `mask` and call [`Cursor::while_backedge`].
    WhileBackedge {
        /// Continuation predicate.
        pred: Pred,
        /// Invert the predicate sense.
        negate: bool,
        /// The lanes that executed this pass.
        mask: u32,
    },
}

impl Cursor {
    /// Cursor at the program entry with the given initial active mask.
    pub fn new(prog: &Program, mask: u32) -> Self {
        Cursor {
            frames: vec![Frame {
                seq: prog.root,
                idx: 0,
                mask,
                while_of: None,
            }],
        }
    }

    /// `true` once the warp has retired every instruction.
    pub fn done(&self) -> bool {
        self.frames.is_empty()
    }

    /// Peek the next fetchable item, resolving control flow that needs no
    /// execution (frame pops). Branches, `IfMasked` and while back-edges need
    /// predicate values, so those are surfaced for the executor to resolve.
    pub fn fetch<'a>(&mut self, prog: &'a Program) -> Option<FetchItem<'a>> {
        loop {
            let top = self.frames.last().copied()?;
            if top.idx >= prog.seqs[top.seq].len() {
                if let Some((pred, negate)) = top.while_of {
                    return Some(FetchItem::WhileBackedge {
                        pred,
                        negate,
                        mask: top.mask,
                    });
                }
                self.frames.pop();
                continue;
            }
            return Some(FetchItem::Stmt(&prog.seqs[top.seq][top.idx], top.mask));
        }
    }

    /// Advance past a plain instruction or `Sync`.
    pub fn step(&mut self) {
        self.frames.last_mut().expect("step on finished cursor").idx += 1;
    }

    /// Resolve a branch: if `taken`, jump to `target` in the current
    /// sequence; otherwise fall through.
    pub fn branch(&mut self, taken: bool, target: usize) {
        let f = self.frames.last_mut().expect("branch on finished cursor");
        if taken {
            f.idx = target;
        } else {
            f.idx += 1;
        }
    }

    /// Enter an `IfMasked`: push the else and then frames (then executes
    /// first). Frames with empty masks are skipped.
    pub fn enter_if(&mut self, then_seq: usize, else_seq: usize, then_mask: u32, else_mask: u32) {
        self.step();
        if else_mask != 0 {
            self.frames.push(Frame {
                seq: else_seq,
                idx: 0,
                mask: else_mask,
                while_of: None,
            });
        }
        if then_mask != 0 {
            self.frames.push(Frame {
                seq: then_seq,
                idx: 0,
                mask: then_mask,
                while_of: None,
            });
        }
    }

    /// Enter a `WhileMasked` body (bottom-tested: the body runs at least once
    /// with the current mask).
    pub fn enter_while(&mut self, body_seq: usize, pred: Pred, negate: bool, mask: u32) {
        self.step();
        if mask != 0 {
            self.frames.push(Frame {
                seq: body_seq,
                idx: 0,
                mask,
                while_of: Some((pred, negate)),
            });
        }
    }

    /// Resolve a while back-edge: lanes in `continue_mask` run another pass;
    /// an empty mask exits the loop.
    pub fn while_backedge(&mut self, continue_mask: u32) {
        let f = self.frames.last_mut().expect("backedge on finished cursor");
        assert!(f.while_of.is_some(), "while_backedge outside a while frame");
        if continue_mask != 0 {
            f.mask = continue_mask;
            f.idx = 0;
        } else {
            self.frames.pop();
        }
    }
}

/// Evaluate a predicate for every active lane of a warp; returns the lane
/// mask of threads where it holds.
pub fn pred_mask(ctx: &BlockCtx, warp: usize, mask: u32, p: Pred, negate: bool) -> u32 {
    let mut out = 0u32;
    for l in 0..WARP {
        if mask & (1 << l) == 0 {
            continue;
        }
        let t = warp * WARP + l;
        if t >= ctx.n_threads {
            continue;
        }
        if ctx.pred(t, p) != negate {
            out |= 1 << l;
        }
    }
    out
}

/// Mask of lanes of `warp` that map to real threads of the block.
pub fn live_lane_mask(n_threads: usize, warp: usize) -> u32 {
    let mut m = 0u32;
    for l in 0..WARP {
        if warp * WARP + l < n_threads {
            m |= 1 << l;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::lower::lower;
    use crate::ir::KernelBuilder;
    use crate::mem::GlobalMemory;

    fn env() -> LaunchEnv {
        LaunchEnv {
            block_dim: 32,
            grid_dim: 1,
        }
    }

    #[test]
    fn params_are_bound_to_leading_registers() {
        let mut b = KernelBuilder::new("p");
        let p0 = b.param();
        let _p1 = b.param();
        let _ = b.iadd(p0.into(), Operand::ImmU(1));
        let prog = lower(&b.finish());
        let ctx = BlockCtx::new(&prog, 0, 32, &[11, 22]).unwrap();
        assert_eq!(ctx.reg(0, Reg(0)), 11);
        assert_eq!(ctx.reg(31, Reg(1)), 22);
    }

    #[test]
    fn alu_semantics_float_and_int() {
        assert_eq!(
            f32::from_bits(alu(AluOp::FAdd, 1.5f32.to_bits(), 2.5f32.to_bits())),
            4.0
        );
        assert_eq!(alu(AluOp::IAdd, u32::MAX, 1), 0);
        assert_eq!(alu(AluOp::IShl, 1, 4), 16);
        assert_eq!(
            f32::from_bits(alu(AluOp::FMax, (-1.0f32).to_bits(), 2.0f32.to_bits())),
            2.0
        );
    }

    #[test]
    fn exec_mov_respects_mask() {
        let mut b = KernelBuilder::new("m");
        let r = b.reg();
        b.emit(Instr::Mov {
            dst: r,
            src: Operand::ImmU(7),
        });
        let k = b.finish();
        let prog = lower(&k);
        let mut ctx = BlockCtx::new(&prog, 0, 32, &[]).unwrap();
        let mut gmem = GlobalMemory::new(64);
        // Only lanes 0 and 3 active.
        exec_instr(
            &Instr::Mov {
                dst: r,
                src: Operand::ImmU(7),
            },
            &mut ctx,
            0,
            0b1001,
            &env(),
            &mut gmem,
            0,
            None,
            true,
        )
        .unwrap();
        assert_eq!(ctx.reg(0, r), 7);
        assert_eq!(ctx.reg(1, r), 0);
        assert_eq!(ctx.reg(3, r), 7);
    }

    #[test]
    fn special_regs_reflect_thread_identity() {
        let mut b = KernelBuilder::new("s");
        let t = b.special(SpecialReg::TidX);
        let k = b.finish();
        let prog = lower(&k);
        let mut ctx = BlockCtx::new(&prog, 5, 64, &[]).unwrap();
        let mut gmem = GlobalMemory::new(64);
        let e = LaunchEnv {
            block_dim: 64,
            grid_dim: 9,
        };
        exec_instr(
            &Instr::Special {
                dst: t,
                sr: SpecialReg::TidX,
            },
            &mut ctx,
            1,
            u32::MAX,
            &e,
            &mut gmem,
            0,
            None,
            true,
        )
        .unwrap();
        assert_eq!(ctx.reg(32, t), 32);
        assert_eq!(ctx.reg(63, t), 63);
        exec_instr(
            &Instr::Special {
                dst: t,
                sr: SpecialReg::CtaidX,
            },
            &mut ctx,
            0,
            u32::MAX,
            &e,
            &mut gmem,
            0,
            None,
            true,
        )
        .unwrap();
        assert_eq!(ctx.reg(0, t), 5);
    }

    #[test]
    fn global_load_produces_mem_trace() {
        let mut b = KernelBuilder::new("ld");
        let base = b.param();
        let _v = b.ld(MemSpace::Global, base, 0, 1);
        let k = b.finish();
        let prog = lower(&k);
        let mut gmem = GlobalMemory::new(1024);
        let ptr = gmem.alloc_f32(&[1.0; 64]).unwrap();
        let mut ctx = BlockCtx::new(&prog, 0, 32, &[ptr.0 as u32]).unwrap();
        // Give each lane a distinct address: addr = base + 4*t via a mad.
        // Simpler: directly execute a load with base reg holding per-thread
        // addresses.
        let r = Reg(0);
        for t in 0..32 {
            let a = ptr.0 as u32 + 4 * t as u32;
            ctx.set_reg(t, r, a);
        }
        let tr = exec_instr(
            &Instr::Ld {
                dsts: vec![Reg(1)],
                space: MemSpace::Global,
                base: r,
                offset: 0,
            },
            &mut ctx,
            0,
            u32::MAX,
            &env(),
            &mut gmem,
            0,
            None,
            true,
        )
        .unwrap()
        .unwrap();
        assert!(tr.is_load);
        assert_eq!(tr.addrs.iter().flatten().count(), 32);
        assert_eq!(f32::from_bits(ctx.reg(7, Reg(1))), 1.0);
    }

    #[test]
    fn shared_roundtrip_within_block() {
        let mut b = KernelBuilder::new("sm");
        b.shared_mem(256);
        let r = b.mov(Operand::ImmU(16));
        let v = b.mov(Operand::ImmF(3.5));
        b.st(MemSpace::Shared, r, 0, vec![v.into()]);
        let _w = b.ld(MemSpace::Shared, r, 0, 1);
        let k = b.finish();
        let prog = lower(&k);
        let mut ctx = BlockCtx::new(&prog, 0, 1, &[]).unwrap();
        let mut gmem = GlobalMemory::new(64);
        for s in &prog.seqs[prog.root] {
            if let LinStmt::I(i) = s {
                exec_instr(i, &mut ctx, 0, 1, &env(), &mut gmem, 0, None, false).unwrap();
            }
        }
        // The load's destination is the last register.
        let last = Reg(k.n_regs - 1);
        assert_eq!(f32::from_bits(ctx.reg(0, last)), 3.5);
    }

    #[test]
    fn cursor_walks_pops_and_branches() {
        let mut b = KernelBuilder::new("c");
        b.for_loop(Operand::ImmU(0), Operand::ImmU(2), 1, |b, _| {
            b.mov(Operand::ImmU(1));
        });
        let prog = lower(&b.finish());
        let mut cur = Cursor::new(&prog, u32::MAX);
        let mut executed = 0;
        let mut ctx = BlockCtx::new(&prog, 0, 32, &[]).unwrap();
        let mut gmem = GlobalMemory::new(64);
        while let Some(item) = cur.fetch(&prog) {
            let FetchItem::Stmt(stmt, mask) = item else {
                unreachable!("no while loops here")
            };
            match stmt {
                LinStmt::I(i) => {
                    exec_instr(i, &mut ctx, 0, mask, &env(), &mut gmem, 0, None, false).unwrap();
                    executed += 1;
                    cur.step();
                }
                LinStmt::Bra {
                    pred,
                    negate,
                    target,
                } => {
                    let m = pred_mask(&ctx, 0, mask, *pred, *negate);
                    assert!(m == 0 || m == mask, "non-uniform loop branch");
                    cur.branch(m == mask, *target);
                }
                LinStmt::IfMasked { .. } | LinStmt::WhileMasked { .. } | LinStmt::Sync => {
                    unreachable!()
                }
            }
        }
        // mov init + 2 × (body mov + add + setp) = 7 executed instructions.
        assert_eq!(executed, 7);
        assert!(cur.done());
    }

    #[test]
    fn live_lane_masks() {
        assert_eq!(live_lane_mask(32, 0), u32::MAX);
        assert_eq!(live_lane_mask(40, 1), 0xFF);
        assert_eq!(live_lane_mask(40, 2), 0);
    }
}
