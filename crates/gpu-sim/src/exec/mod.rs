//! Kernel execution: functional interpretation and cycle-level timing.
//!
//! Both executors run the *lowered* program ([`crate::ir::lower::Program`])
//! warp-synchronously: the 32 lanes of a warp move through the instruction
//! stream together under an active mask, exactly as CC-1.x hardware issues
//! them. The two executors share one implementation of instruction semantics
//! ([`machine`]), so the timed engine can never compute different values than
//! the functional one.
//!
//! * [`functional`] — runs every block of the grid to completion, warp by
//!   warp (barrier-segmented), against simulated global memory.
//! * [`timed`] — simulates the resident blocks of **one SM**: a round-robin
//!   warp scheduler with a register scoreboard, a global-memory pipeline fed
//!   by the coalescer, shared-memory bank serialization and block barriers.
//! * [`launch`] — launch configuration, grid-level drivers and the
//!   steady-state extrapolation helpers used by the benchmarks.

pub mod functional;
pub mod launch;
pub mod machine;
pub mod timed;
