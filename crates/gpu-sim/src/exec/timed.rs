//! Cycle-level simulation of one streaming multiprocessor.
//!
//! The engine schedules the warps of the SM's *resident blocks* through a
//! single issue port (G80 issues one warp instruction at a time), with:
//!
//! * a **register/predicate scoreboard** — an instruction cannot issue until
//!   its operands are ready (ALU results appear after a pipeline latency,
//!   load results after the memory round trip);
//! * a **memory pipeline** — every global access is run through the
//!   [`crate::coalesce`] protocol of the configured driver; each transaction
//!   occupies the SM's path to DRAM for a size-dependent time and its data
//!   returns one latency later. A per-warp in-flight-load limit models the
//!   G80's small MSHR budget;
//! * **shared-memory bank serialization** — per half-warp, per 32-bit phase,
//!   the access reissues once per conflicting bank set ([`crate::banks`]);
//! * **block barriers** — `Sync` parks a warp until every warp of its block
//!   arrives.
//!
//! Occupancy effects emerge rather than being assumed: more resident warps
//! (from lower register pressure or better block sizes) give the scheduler
//! more candidates to hide latencies and barrier bubbles with — which is how
//! the paper's 50 % → 67 % occupancy step buys its ~6 %.

use super::functional::{configured_threads, validate_launch};
use super::machine::{
    exec_instr, live_lane_mask, pred_mask, BlockCtx, Cursor, FetchItem, LaunchEnv,
};
use crate::banks::conflict_degree;
use crate::coalesce::CoalesceCache;
use crate::device::DeviceConfig;
use crate::driver::DriverModel;
use crate::fault::{DeviceError, DeviceResult, FaultKind};
use crate::ir::lower::{lower, LinStmt, Program};
use crate::ir::{Instr, Kernel, MemSpace, UnaryOp};
use crate::mem::{BlockShard, DeviceMem, GlobalMemory};
use crate::texcache::TexCache;
use crate::timing::TimingParams;

/// Additional latency before an ALU result can be consumed by the same warp
/// (G80's register read-after-write pipeline depth, ~6 warp-slots).
const ALU_RAW_LATENCY: u64 = 20;
/// RAW latency for SFU results.
const SFU_RAW_LATENCY: u64 = 32;
/// Latency of a shared-memory load (register-file speed plus a bank cycle).
const SMEM_LATENCY: u64 = 24;

/// Result of timing one SM's resident blocks to completion.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimedRun {
    /// Cycles from launch until the last warp (and the memory pipe) drained.
    pub cycles: u64,
    /// Warp instructions issued.
    pub warp_instructions: u64,
    /// Global-memory transactions issued.
    pub transactions: u64,
    /// Bytes moved across the DRAM bus.
    pub bus_bytes: u64,
    /// Texture-cache hits (texture-path loads only).
    pub tex_hits: u64,
    /// Texture-cache misses.
    pub tex_misses: u64,
    /// Warp-issue opportunities lost to scoreboard/memory stalls (cycles the
    /// issue port sat idle while work remained).
    pub idle_cycles: u64,
}

impl TimedRun {
    /// Associative per-SM merge: total time is the slowest SM, counters sum.
    pub fn merge(&mut self, other: &TimedRun) {
        self.cycles = self.cycles.max(other.cycles);
        self.warp_instructions += other.warp_instructions;
        self.transactions += other.transactions;
        self.bus_bytes += other.bus_bytes;
        self.tex_hits += other.tex_hits;
        self.tex_misses += other.tex_misses;
        self.idle_cycles += other.idle_cycles;
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WarpPhase {
    Ready,
    AtBarrier,
    Done,
}

struct WarpSim {
    block: usize,
    warp_in_block: usize,
    cursor: Cursor,
    phase: WarpPhase,
    /// Earliest cycle this warp may issue again.
    resume_at: u64,
    reg_ready: Vec<u64>,
    pred_ready: Vec<u64>,
    /// Completion times of in-flight loads.
    outstanding: Vec<u64>,
    finish: u64,
}

/// Simulate the given resident blocks of a launch on one SM.
///
/// `resident` lists the block ids co-resident on the SM (e.g. `[0, 1]` for
/// two resident blocks — use [`crate::occupancy`] to decide how many).
/// Functional side effects go to `gmem`, so pass a scratch clone when only
/// the timing is wanted.
#[allow(clippy::too_many_arguments)]
pub fn time_resident(
    kernel: &Kernel,
    resident: &[u32],
    block_size: u32,
    grid: u32,
    params: &[u32],
    gmem: &mut GlobalMemory,
    dev: &DeviceConfig,
    driver: DriverModel,
    tp: &TimingParams,
) -> DeviceResult<TimedRun> {
    let prog = lower(kernel);
    time_resident_lowered(
        &prog, resident, block_size, grid, params, gmem, dev, driver, tp,
    )
}

/// As [`time_resident`], for an already-lowered program.
#[allow(clippy::too_many_arguments)]
pub fn time_resident_lowered<M: DeviceMem>(
    prog: &Program,
    resident: &[u32],
    block_size: u32,
    grid: u32,
    params: &[u32],
    gmem: &mut M,
    dev: &DeviceConfig,
    driver: DriverModel,
    tp: &TimingParams,
) -> DeviceResult<TimedRun> {
    time_sm_queue(
        prog,
        resident,
        &[],
        block_size,
        grid,
        params,
        gmem,
        dev,
        driver,
        tp,
    )
}

/// Simulate one SM running `resident` blocks concurrently, admitting blocks
/// from `pending` (in order) as resident blocks retire — the G80 dispatch
/// behaviour. This is the exact engine behind [`time_grid`]; the
/// wave-extrapolation path ([`time_resident`]) is its `pending = []` special
/// case.
#[allow(clippy::too_many_arguments)]
pub fn time_sm_queue<M: DeviceMem>(
    prog: &Program,
    resident: &[u32],
    pending: &[u32],
    block_size: u32,
    grid: u32,
    params: &[u32],
    gmem: &mut M,
    dev: &DeviceConfig,
    driver: DriverModel,
    tp: &TimingParams,
) -> DeviceResult<TimedRun> {
    let bad = |reason: String| {
        Err(DeviceError::new(FaultKind::BadLaunch { reason }).with_kernel(&prog.name))
    };
    validate_launch(grid, block_size).map_err(|e| e.with_kernel(&prog.name))?;
    if resident.is_empty() {
        return bad("no resident blocks".into());
    }
    let mut pending: std::collections::VecDeque<u32> = pending.iter().copied().collect();
    if let Some(b) = pending.iter().chain(resident.iter()).find(|b| **b >= grid) {
        return bad(format!("block id {b} beyond grid of {grid}"));
    }
    let env = LaunchEnv {
        block_dim: block_size,
        grid_dim: grid,
    };
    let n_threads = block_size as usize;
    let warps_per_block = n_threads.div_ceil(32);
    let half = dev.half_warp as usize;

    let mut blocks: Vec<BlockCtx> = resident
        .iter()
        .map(|&b| BlockCtx::new(prog, b, n_threads, params))
        .collect::<DeviceResult<_>>()?;
    let mut warps: Vec<WarpSim> = Vec::new();
    for (bi, _) in resident.iter().enumerate() {
        for w in 0..warps_per_block {
            warps.push(WarpSim {
                block: bi,
                warp_in_block: w,
                cursor: Cursor::new(prog, live_lane_mask(n_threads, w)),
                phase: WarpPhase::Ready,
                resume_at: 0,
                reg_ready: vec![0; prog.n_regs as usize],
                pred_ready: vec![0; prog.n_preds as usize],
                outstanding: Vec::new(),
                finish: 0,
            });
        }
    }

    let mut stats = TimedRun::default();
    let mut tex_cache = TexCache::g80();
    // Coalescing decisions are translation-invariant modulo 256-byte base
    // alignment, so identical half-warp access shapes (e.g. every iteration
    // of a streaming loop) hit this memo instead of re-running the protocol.
    let mut co_cache = CoalesceCache::new(driver);
    let mut issue_free: u64 = 0;
    let mut mem_free: u64 = 0;
    let mut last_issued: usize = 0;
    let mut busy_until: u64 = 0;

    loop {
        // Step-budget watchdog: a runaway kernel (e.g. a data-dependent loop
        // that never converges) is killed with a typed, retryable fault
        // instead of spinning the scheduler forever.
        if let Some(budget) = tp.watchdog_instructions {
            if stats.warp_instructions >= budget {
                return Err(DeviceError::new(FaultKind::WatchdogTimeout {
                    budget,
                    executed: stats.warp_instructions,
                })
                .with_kernel(&prog.name));
            }
        }
        // Find the warp that can issue earliest (round-robin tie-break).
        let mut best: Option<(u64, usize)> = None;
        for off in 0..warps.len() {
            let wi = (last_issued + 1 + off) % warps.len();
            let Some(t) = earliest_issue(&warps[wi], prog, issue_free, tp) else {
                continue;
            };
            match best {
                Some((bt, _)) if bt <= t => {}
                _ => best = Some((t, wi)),
            }
        }
        let Some((now, wi)) = best else {
            break; // everyone is done (or parked at a barrier — checked below)
        };
        if now > busy_until {
            stats.idle_cycles += now - busy_until;
        }

        last_issued = wi;
        let item = {
            let w = &mut warps[wi];
            match w
                .cursor
                .fetch(prog)
                .expect("issueable warp has an instruction")
            {
                FetchItem::Stmt(s, m) => (Some(s.clone()), m, None),
                FetchItem::WhileBackedge { pred, negate, mask } => {
                    (None, mask, Some((pred, negate)))
                }
            }
        };
        if let (None, mask, Some((pred, negate))) = (&item.0, item.1, item.2) {
            // Divergent-loop back-edge: a branch instruction.
            stats.warp_instructions += 1;
            let w = &warps[wi];
            let cont = pred_mask(&blocks[w.block], w.warp_in_block, mask, pred, negate);
            let w = &mut warps[wi];
            issue_free = now + tp.issue_alu;
            busy_until = busy_until.max(issue_free);
            w.resume_at = issue_free;
            w.cursor.while_backedge(cont);
            w.finish = w.finish.max(issue_free);
            if w.cursor.fetch(prog).is_none() {
                w.phase = WarpPhase::Done;
            }
            continue;
        }
        let (stmt, mask) = (item.0.expect("statement"), item.1);

        match &stmt {
            LinStmt::I(i) => {
                let trace = {
                    let w = &warps[wi];
                    let ctx = &mut blocks[w.block];
                    let wib = w.warp_in_block;
                    exec_instr(i, ctx, wib, mask, &env, gmem, now, None, true)
                        .map_err(|e| e.with_kernel(&prog.name))?
                };
                stats.warp_instructions += 1;
                let w = &mut warps[wi];
                let issue_cost;
                match (i, &trace) {
                    (
                        Instr::Ld {
                            dsts,
                            space: MemSpace::Global,
                            ..
                        },
                        Some(tr),
                    ) => {
                        issue_cost = tp.issue_mem;
                        // Coalesce each half-warp and push transactions
                        // through the memory pipe.
                        let mut data_ready = now + tp.issue_mem + tp.mem_latency;
                        for h in tr.addrs.chunks(half) {
                            for &bytes in co_cache.transaction_sizes(h, tr.width) {
                                let start = mem_free.max(now + tp.issue_mem);
                                mem_free = start + tp.transaction_busy(bytes);
                                data_ready = data_ready.max(start + tp.mem_latency);
                                stats.transactions += 1;
                                stats.bus_bytes += bytes as u64;
                            }
                        }
                        for d in dsts {
                            w.reg_ready[d.0 as usize] = data_ready;
                        }
                        w.outstanding.retain(|&d| d > now);
                        w.outstanding.push(data_ready);
                    }
                    (
                        Instr::St {
                            space: MemSpace::Global,
                            ..
                        },
                        Some(tr),
                    ) => {
                        issue_cost = tp.issue_mem;
                        for h in tr.addrs.chunks(half) {
                            for &bytes in co_cache.transaction_sizes(h, tr.width) {
                                let start = mem_free.max(now + tp.issue_mem);
                                mem_free = start + tp.transaction_busy(bytes);
                                stats.transactions += 1;
                                stats.bus_bytes += bytes as u64;
                            }
                        }
                    }
                    (
                        Instr::Ld {
                            dsts,
                            space: MemSpace::Texture,
                            ..
                        },
                        Some(tr),
                    ) => {
                        // Texture path: no coalescing; 32B-line cache per SM.
                        issue_cost = tp.issue_mem;
                        let mut data_ready = now + tp.issue_mem + tp.tex_hit_latency;
                        for a in tr.addrs.iter().flatten() {
                            for line in TexCache::lines_of(*a, tr.width.bytes()) {
                                if tex_cache.access(line) {
                                    stats.tex_hits += 1;
                                } else {
                                    stats.tex_misses += 1;
                                    let start = mem_free.max(now + tp.issue_mem);
                                    mem_free = start + tp.transaction_busy(32);
                                    data_ready = data_ready.max(start + tp.mem_latency);
                                    stats.transactions += 1;
                                    stats.bus_bytes += 32;
                                }
                            }
                        }
                        for d in dsts {
                            w.reg_ready[d.0 as usize] = data_ready;
                        }
                        w.outstanding.retain(|&d| d > now);
                        w.outstanding.push(data_ready);
                    }
                    (
                        Instr::Ld {
                            space: MemSpace::Shared,
                            ..
                        },
                        Some(tr),
                    )
                    | (
                        Instr::St {
                            space: MemSpace::Shared,
                            ..
                        },
                        Some(tr),
                    ) => {
                        let words = tr.width.bytes() / 4;
                        // Worst conflict degree across half-warps and phases.
                        let mut degree = 1u64;
                        for h in tr.addrs.chunks(half) {
                            for phase in 0..words {
                                let phase_addrs: Vec<Option<u64>> =
                                    h.iter().map(|a| a.map(|a| a + 4 * phase)).collect();
                                degree = degree
                                    .max(conflict_degree(&phase_addrs, dev.smem_banks) as u64);
                            }
                        }
                        issue_cost = tp.issue_smem * words * degree;
                        if let Instr::Ld { dsts, .. } = i {
                            for d in dsts {
                                w.reg_ready[d.0 as usize] = now + issue_cost + SMEM_LATENCY;
                            }
                        }
                    }
                    (
                        Instr::Unary {
                            op: UnaryOp::FRsqrt,
                            dst,
                            ..
                        },
                        _,
                    ) => {
                        issue_cost = tp.issue_sfu;
                        w.reg_ready[dst.0 as usize] = now + issue_cost + SFU_RAW_LATENCY;
                    }
                    (Instr::Setp { dst, .. }, _) => {
                        issue_cost = tp.issue_alu;
                        w.pred_ready[dst.0 as usize] = now + issue_cost + ALU_RAW_LATENCY;
                    }
                    _ => {
                        issue_cost = tp.issue_alu;
                        for d in i.defs() {
                            w.reg_ready[d.0 as usize] = now + issue_cost + ALU_RAW_LATENCY;
                        }
                    }
                }
                issue_free = now + issue_cost;
                busy_until = busy_until.max(issue_free);
                w.resume_at = issue_free;
                w.cursor.step();
                w.finish = w.finish.max(issue_free);
                if w.cursor.fetch(prog).is_none() {
                    w.phase = WarpPhase::Done;
                }
            }
            LinStmt::Bra {
                pred,
                negate,
                target,
            } => {
                stats.warp_instructions += 1;
                let w = &warps[wi];
                let m = pred_mask(&blocks[w.block], w.warp_in_block, mask, *pred, *negate);
                if m != 0 && m != mask {
                    let lane = (m ^ mask).trailing_zeros();
                    return Err(
                        DeviceError::new(FaultKind::DivergentBranch { mask, taken: m })
                            .with_kernel(&prog.name)
                            .with_block(blocks[w.block].block_id)
                            .with_thread(w.warp_in_block as u32 * 32 + lane)
                            .with_instruction(now),
                    );
                }
                let taken = m == mask;
                let w = &mut warps[wi];
                issue_free = now + tp.issue_alu;
                busy_until = busy_until.max(issue_free);
                w.resume_at = issue_free;
                w.cursor.branch(taken, *target);
                w.finish = w.finish.max(issue_free);
                if w.cursor.fetch(prog).is_none() {
                    w.phase = WarpPhase::Done;
                }
            }
            LinStmt::IfMasked {
                pred,
                negate,
                then_seq,
                else_seq,
            } => {
                // The branch instruction guarding the region.
                stats.warp_instructions += 1;
                let w = &warps[wi];
                let tm = pred_mask(&blocks[w.block], w.warp_in_block, mask, *pred, *negate);
                let em = mask & !tm;
                let w = &mut warps[wi];
                issue_free = now + tp.issue_alu;
                busy_until = busy_until.max(issue_free);
                w.resume_at = issue_free;
                w.cursor.enter_if(*then_seq, *else_seq, tm, em);
                w.finish = w.finish.max(issue_free);
                if w.cursor.fetch(prog).is_none() {
                    w.phase = WarpPhase::Done;
                }
            }
            LinStmt::WhileMasked {
                pred,
                negate,
                body_seq,
            } => {
                let w = &mut warps[wi];
                issue_free = now + tp.issue_alu;
                busy_until = busy_until.max(issue_free);
                w.resume_at = issue_free;
                w.cursor.enter_while(*body_seq, *pred, *negate, mask);
                w.finish = w.finish.max(issue_free);
                if w.cursor.fetch(prog).is_none() {
                    w.phase = WarpPhase::Done;
                }
            }
            LinStmt::Sync => {
                stats.warp_instructions += 1; // bar.sync is an instruction
                                              // (fallthrough to barrier handling below)
                let w = &mut warps[wi];
                issue_free = now + tp.issue_sync;
                busy_until = busy_until.max(issue_free);
                w.phase = WarpPhase::AtBarrier;
                w.resume_at = issue_free;
                w.finish = w.finish.max(issue_free);
                // Release the barrier if everyone arrived.
                let block = warps[wi].block;
                let all_arrived = warps
                    .iter()
                    .filter(|x| x.block == block)
                    .all(|x| matches!(x.phase, WarpPhase::AtBarrier | WarpPhase::Done));
                if all_arrived {
                    let release = warps
                        .iter()
                        .filter(|x| x.block == block && x.phase == WarpPhase::AtBarrier)
                        .map(|x| x.resume_at)
                        .max()
                        .unwrap_or(now);
                    for x in warps.iter_mut().filter(|x| x.block == block) {
                        if x.phase == WarpPhase::AtBarrier {
                            x.phase = WarpPhase::Ready;
                            x.resume_at = x.resume_at.max(release);
                            x.cursor.step();
                            if x.cursor.fetch(prog).is_none() {
                                x.phase = WarpPhase::Done;
                            }
                        }
                    }
                }
            }
        }

        // Block retirement → admit the next pending block into the slot.
        if !pending.is_empty() {
            let slot = warps[wi].block;
            let all_done = warps
                .iter()
                .filter(|x| x.block == slot)
                .all(|x| x.phase == WarpPhase::Done);
            if all_done {
                if let Some(next_id) = pending.pop_front() {
                    let retire = warps
                        .iter()
                        .filter(|x| x.block == slot)
                        .map(|x| x.finish)
                        .max()
                        .unwrap_or(0);
                    blocks[slot] = BlockCtx::new(prog, next_id, n_threads, params)?;
                    for x in warps.iter_mut().filter(|x| x.block == slot) {
                        x.cursor = Cursor::new(prog, live_lane_mask(n_threads, x.warp_in_block));
                        x.phase = WarpPhase::Ready;
                        x.resume_at = retire;
                        x.reg_ready.iter_mut().for_each(|r| *r = retire);
                        x.pred_ready.iter_mut().for_each(|r| *r = retire);
                        x.outstanding.clear();
                        x.finish = retire;
                    }
                }
            }
        }
    }

    // Sanity: nobody left parked at a barrier.
    if !warps.iter().all(|w| w.phase == WarpPhase::Done) {
        return Err(DeviceError::new(FaultKind::Deadlock {
            reason: "warp parked at a barrier at end of simulation".into(),
        })
        .with_kernel(&prog.name));
    }
    assert!(pending.is_empty(), "blocks left unadmitted");
    stats.cycles = warps
        .iter()
        .map(|w| w.finish)
        .max()
        .unwrap_or(0)
        .max(mem_free);
    stats.idle_cycles = stats.idle_cycles.min(stats.cycles);
    Ok(stats)
}

/// Exact full-grid timing: every block of the launch is simulated, with the
/// G80's per-SM dispatch modeled as round-robin block queues (SM `s` runs
/// blocks `s, s+S, s+2S, …` with `active_blocks` resident at a time; a
/// retiring block immediately admits the next in its queue). Total time is
/// the slowest SM. Expensive — use for validating the wave-extrapolation
/// model at moderate sizes, not for the 10⁶-body sweeps.
#[allow(clippy::too_many_arguments)]
pub fn time_grid(
    kernel: &Kernel,
    grid: u32,
    block_size: u32,
    resident_per_sm: u32,
    params: &[u32],
    gmem: &mut GlobalMemory,
    dev: &DeviceConfig,
    driver: DriverModel,
    tp: &TimingParams,
) -> DeviceResult<TimedRun> {
    let prog = lower(kernel);
    time_grid_lowered_full(
        &prog,
        grid,
        block_size,
        resident_per_sm,
        params,
        gmem,
        dev,
        driver,
        tp,
        configured_threads(),
    )
}

/// As [`time_grid`] for an already-lowered program, with an explicit host
/// thread count. SMs are mutually independent (each owns its block queue and
/// texture cache, and CUDA blocks never read other blocks' writes within a
/// launch), so with `threads > 1` each SM's queue runs against its own
/// [`BlockShard`] write-view and the results are committed in ascending SM
/// order — memory contents, summed stats and the first-faulting-SM error are
/// bit-identical to the sequential loop.
#[allow(clippy::too_many_arguments)]
pub fn time_grid_lowered_full(
    prog: &Program,
    grid: u32,
    block_size: u32,
    resident_per_sm: u32,
    params: &[u32],
    gmem: &mut GlobalMemory,
    dev: &DeviceConfig,
    driver: DriverModel,
    tp: &TimingParams,
    threads: usize,
) -> DeviceResult<TimedRun> {
    if resident_per_sm < 1 {
        return Err(DeviceError::new(FaultKind::BadLaunch {
            reason: "resident_per_sm must be at least 1".into(),
        })
        .with_kernel(&prog.name));
    }
    let queues: Vec<Vec<u32>> = (0..dev.num_sms)
        .map(|sm| {
            (sm..grid)
                .step_by(dev.num_sms as usize)
                .collect::<Vec<u32>>()
        })
        .filter(|q| !q.is_empty())
        .collect();

    let mut total = TimedRun::default();
    if threads <= 1 || queues.len() <= 1 {
        for queue in &queues {
            let r = (resident_per_sm as usize).min(queue.len());
            let run = time_sm_queue(
                prog,
                &queue[..r],
                &queue[r..],
                block_size,
                grid,
                params,
                gmem,
                dev,
                driver,
                tp,
            )?;
            total.merge(&run);
        }
        return Ok(total);
    }

    // One finished SM-queue: the shard's buffered writes plus its run result.
    type QueueOutcome = (Vec<(u64, u32)>, DeviceResult<TimedRun>);
    let base: &GlobalMemory = gmem;
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut outcomes: Vec<Option<QueueOutcome>> = (0..queues.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads.min(queues.len()))
            .map(|_| {
                s.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        let qi = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(queue) = queues.get(qi) else {
                            break;
                        };
                        let r = (resident_per_sm as usize).min(queue.len());
                        let mut shard = BlockShard::new(base);
                        let res = time_sm_queue(
                            prog,
                            &queue[..r],
                            &queue[r..],
                            block_size,
                            grid,
                            params,
                            &mut shard,
                            dev,
                            driver,
                            tp,
                        );
                        produced.push((qi, (shard.into_writes(), res)));
                    }
                    produced
                })
            })
            .collect();
        for h in handles {
            for (qi, o) in h.join().expect("timed worker thread panicked") {
                outcomes[qi] = Some(o);
            }
        }
    });

    // Deterministic merge, ascending SM index: commit each SM's writes (the
    // faulting SM's partial writes included — the same side effects the
    // sequential loop leaves behind), return the lowest-SM error if any.
    for (writes, res) in outcomes.into_iter().flatten() {
        for (a, v) in writes {
            GlobalMemory::store_u32(gmem, a, v).map_err(|e| e.with_kernel(&prog.name))?;
        }
        total.merge(&res?);
    }
    Ok(total)
}

/// Earliest cycle at which this warp could issue its next instruction, or
/// `None` if it cannot issue at all right now (done, or parked at a barrier).
fn earliest_issue(w: &WarpSim, prog: &Program, issue_free: u64, tp: &TimingParams) -> Option<u64> {
    if w.phase != WarpPhase::Ready {
        return None;
    }
    // Peek the next statement without mutating the cursor: clone it (frames
    // are tiny).
    let mut c = w.cursor.clone();
    let item = c.fetch(prog)?;
    let mut t = issue_free.max(w.resume_at);
    let stmt = match item {
        FetchItem::Stmt(s, _) => s,
        FetchItem::WhileBackedge { pred, .. } => {
            return Some(t.max(w.pred_ready[pred.0 as usize]));
        }
    };
    match stmt {
        LinStmt::I(i) => {
            for u in i.uses() {
                t = t.max(w.reg_ready[u.0 as usize]);
            }
            if let Instr::Ld {
                space: MemSpace::Global,
                ..
            } = i
            {
                let in_flight = w.outstanding.iter().filter(|&&done| done > t).count() as u32;
                if in_flight >= tp.max_outstanding_loads {
                    let mut completions: Vec<u64> =
                        w.outstanding.iter().copied().filter(|&d| d > t).collect();
                    completions.sort_unstable();
                    let idx = completions.len() - tp.max_outstanding_loads as usize;
                    t = t.max(completions[idx]);
                }
            }
        }
        LinStmt::Bra { pred, .. } | LinStmt::IfMasked { pred, .. } => {
            t = t.max(w.pred_ready[pred.0 as usize]);
        }
        LinStmt::WhileMasked { .. } | LinStmt::Sync => {}
    }
    Some(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{KernelBuilder, Operand};

    fn setup() -> (DeviceConfig, TimingParams) {
        (
            DeviceConfig::g8800gtx(),
            TimingParams::for_driver(DriverModel::Cuda10),
        )
    }

    /// out[i] = a[i] * 2 — smoke test: values correct AND cycles plausible.
    fn scale_kernel() -> Kernel {
        let mut b = KernelBuilder::new("scale");
        let pa = b.param();
        let po = b.param();
        let i = b.global_thread_index();
        let off = b.imul(i.into(), Operand::ImmU(4));
        let aa = b.iadd(pa.into(), off.into());
        let ao = b.iadd(po.into(), off.into());
        let v = b.ld(MemSpace::Global, aa, 0, 1)[0];
        let r = b.fmul(v.into(), Operand::ImmF(2.0));
        b.st(MemSpace::Global, ao, 0, vec![r.into()]);
        b.finish()
    }

    #[test]
    fn timed_run_is_functionally_correct() {
        let (dev, tp) = setup();
        let k = scale_kernel();
        let mut gmem = GlobalMemory::new(1 << 16);
        let xs: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let a = gmem.alloc_f32(&xs).unwrap();
        let o = gmem.alloc(64 * 4).unwrap();
        let run = time_resident(
            &k,
            &[0],
            64,
            1,
            &[a.0 as u32, o.0 as u32],
            &mut gmem,
            &dev,
            DriverModel::Cuda10,
            &tp,
        )
        .unwrap();
        assert!(
            run.cycles > tp.mem_latency,
            "must include a memory round trip"
        );
        let out = gmem.read_f32(o, 64).unwrap();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 2.0 * i as f32);
        }
        assert!(run.transactions >= 4, "2 half-warps × (1 load + 1 store)");
    }

    #[test]
    fn coalesced_loads_cost_less_than_scattered() {
        let (dev, tp) = setup();
        // Coalesced: thread i loads a[i]. Scattered: thread i loads a[7*i]
        // (stride breaks CC-1.0 coalescing).
        let mk = |stride: u32| {
            let mut b = KernelBuilder::new("strided");
            let pa = b.param();
            let po = b.param();
            let i = b.global_thread_index();
            let acc = b.mov(Operand::ImmF(0.0));
            b.for_loop(Operand::ImmU(0), Operand::ImmU(16), 1, |b, it| {
                let idx = b.mad_u(it.into(), Operand::ImmU(64), i.into());
                let off = b.imul(idx.into(), Operand::ImmU(4 * stride));
                let aa = b.iadd(pa.into(), off.into());
                let v = b.ld(MemSpace::Global, aa, 0, 1)[0];
                b.alu_into(acc, crate::ir::AluOp::FAdd, acc.into(), v.into());
            });
            let ao = b.mad_u(i.into(), Operand::ImmU(4), po.into());
            b.st(MemSpace::Global, ao, 0, vec![acc.into()]);
            b.finish()
        };
        let run_one = |stride: u32| {
            let (dev, tp) = setup();
            let mut gmem = GlobalMemory::new(8 << 20);
            let a = gmem.alloc_zeroed(7 << 20).unwrap();
            let o = gmem.alloc(64 * 4).unwrap();
            time_resident(
                &mk(stride),
                &[0],
                64,
                1,
                &[a.0 as u32, o.0 as u32],
                &mut gmem,
                &dev,
                DriverModel::Cuda10,
                &tp,
            )
            .unwrap()
        };
        let _ = (&dev, &tp);
        let coalesced = run_one(1);
        let scattered = run_one(7);
        assert!(
            scattered.cycles > coalesced.cycles,
            "scattered {} should exceed coalesced {}",
            scattered.cycles,
            coalesced.cycles
        );
        assert!(scattered.transactions > coalesced.transactions);
        assert!(scattered.bus_bytes > coalesced.bus_bytes);
    }

    #[test]
    fn more_resident_blocks_hide_latency() {
        let (dev, tp) = setup();
        let k = scale_kernel();
        let grid = 4u32;
        let run_with = |resident: &[u32]| {
            let mut gmem = GlobalMemory::new(1 << 16);
            let a = gmem.alloc_zeroed(grid as u64 * 64 * 4).unwrap();
            let o = gmem.alloc(grid as u64 * 64 * 4).unwrap();
            time_resident(
                &k,
                resident,
                64,
                grid,
                &[a.0 as u32, o.0 as u32],
                &mut gmem,
                &dev,
                DriverModel::Cuda10,
                &tp,
            )
            .unwrap()
        };
        let one = run_with(&[0]);
        let two = run_with(&[0, 1]);
        // Two blocks do twice the work in less than twice the time.
        assert!(
            two.cycles < 2 * one.cycles,
            "two blocks {} vs one {}",
            two.cycles,
            one.cycles
        );
    }

    #[test]
    fn barrier_parks_warps_until_all_arrive() {
        let (dev, tp) = setup();
        let mut b = KernelBuilder::new("bar");
        b.shared_mem(512);
        let po = b.param();
        let tid = b.special(crate::ir::SpecialReg::TidX);
        let sa = b.imul(tid.into(), Operand::ImmU(4));
        let tf = b.reg();
        b.emit(Instr::Unary {
            op: UnaryOp::U2F,
            dst: tf,
            a: tid.into(),
        });
        b.st(MemSpace::Shared, sa, 0, vec![tf.into()]);
        b.sync();
        let v = b.ld(MemSpace::Shared, sa, 0, 1)[0];
        let ao = b.mad_u(tid.into(), Operand::ImmU(4), po.into());
        b.st(MemSpace::Global, ao, 0, vec![v.into()]);
        let k = b.finish();
        let mut gmem = GlobalMemory::new(1 << 12);
        let o = gmem.alloc(128 * 4).unwrap();
        let run = time_resident(
            &k,
            &[0],
            128,
            1,
            &[o.0 as u32],
            &mut gmem,
            &dev,
            DriverModel::Cuda10,
            &tp,
        )
        .unwrap();
        assert!(run.cycles > 0);
        let out = gmem.read_f32(o, 128).unwrap();
        for (t, v) in out.iter().enumerate() {
            assert_eq!(*v, t as f32);
        }
    }

    #[test]
    fn clock_reads_progressing_cycles() {
        let (dev, tp) = setup();
        let mut b = KernelBuilder::new("clk");
        let po = b.param();
        let t0 = b.clock();
        // Some work between the clocks.
        let mut acc = b.mov(Operand::ImmF(1.0));
        for _ in 0..8 {
            acc = b.fmul(acc.into(), Operand::ImmF(1.0001));
        }
        let t1 = b.clock();
        let dt = b.alu(crate::ir::AluOp::ISub, t1.into(), t0.into());
        let tid = b.special(crate::ir::SpecialReg::TidX);
        let ao = b.mad_u(tid.into(), Operand::ImmU(4), po.into());
        b.st(MemSpace::Global, ao, 0, vec![dt.into()]);
        let _ = acc;
        let k = b.finish();
        let mut gmem = GlobalMemory::new(1 << 12);
        let o = gmem.alloc(32 * 4).unwrap();
        time_resident(
            &k,
            &[0],
            32,
            1,
            &[o.0 as u32],
            &mut gmem,
            &dev,
            DriverModel::Cuda10,
            &tp,
        )
        .unwrap();
        let dts = gmem.download(o, 4).unwrap();
        let dt0 = u32::from_le_bytes(dts[0..4].try_into().unwrap());
        // 8 dependent fmuls at issue+RAW each — the delta must at least cover
        // the issue costs.
        assert!(dt0 as u64 >= 8 * tp.issue_alu, "clock delta {dt0}");
    }
}

#[cfg(test)]
mod grid_tests {
    use super::*;
    use crate::ir::{KernelBuilder, Operand};

    /// out[i] = i as float, plus a small compute loop to give blocks a cost.
    fn work_kernel(loop_trips: u32) -> Kernel {
        let mut b = KernelBuilder::new("gridwork");
        let po = b.param();
        let i = b.global_thread_index();
        let acc = b.mov(Operand::ImmF(0.0));
        b.for_loop(Operand::ImmU(0), Operand::ImmU(loop_trips), 1, |b, _| {
            b.alu_into(acc, crate::ir::AluOp::FAdd, acc.into(), Operand::ImmF(1.0));
        });
        let ao = b.mad_u(i.into(), Operand::ImmU(4), po.into());
        b.st(MemSpace::Global, ao, 0, vec![acc.into()]);
        b.finish()
    }

    fn setup(n_threads: u64) -> (DeviceConfig, TimingParams, GlobalMemory, u64) {
        let dev = DeviceConfig::g8800gtx();
        let tp = TimingParams::for_driver(DriverModel::Cuda10);
        let mut gmem = GlobalMemory::new(32 << 20);
        let out = gmem.alloc(n_threads * 4).unwrap();
        (dev, tp, gmem, out.0)
    }

    #[test]
    fn grid_simulation_is_functionally_complete() {
        // Every block of the grid must actually run (including queued ones).
        let k = work_kernel(5);
        let grid = 64u32; // 4 blocks per SM queue on 16 SMs
        let (dev, tp, mut gmem, out) = setup(grid as u64 * 64);
        let run = time_grid(
            &k,
            grid,
            64,
            1,
            &[out as u32],
            &mut gmem,
            &dev,
            DriverModel::Cuda10,
            &tp,
        )
        .unwrap();
        assert!(run.cycles > 0);
        for t in 0..(grid as u64 * 64) {
            let v = gmem.load_f32(out + 4 * t).unwrap();
            assert_eq!(v, 5.0, "thread {t} never ran");
        }
    }

    #[test]
    fn queued_blocks_extend_the_sm_timeline() {
        let k = work_kernel(50);
        let (dev, tp, mut gmem, out) = setup(16 * 4 * 64);
        // 16 blocks = 1 per SM; 64 blocks = 4 per SM queued behind each other.
        let one = time_grid(
            &k,
            16,
            64,
            1,
            &[out as u32],
            &mut gmem.clone(),
            &dev,
            DriverModel::Cuda10,
            &tp,
        )
        .unwrap();
        let four = time_grid(
            &k,
            64,
            64,
            1,
            &[out as u32],
            &mut gmem,
            &dev,
            DriverModel::Cuda10,
            &tp,
        )
        .unwrap();
        assert!(
            four.cycles > 2 * one.cycles,
            "4 sequential blocks per SM: {} vs {}",
            four.cycles,
            one.cycles
        );
        assert!(four.cycles < 6 * one.cycles);
    }

    /// The methodology check: wave extrapolation vs exact dispatch.
    #[test]
    fn wave_extrapolation_tracks_exact_grid_simulation() {
        let k = work_kernel(40);
        let grid = 96u32; // 6 blocks per SM
        let (dev, tp, mut gmem, out) = setup(grid as u64 * 64);
        let exact = time_grid(
            &k,
            grid,
            64,
            2,
            &[out as u32],
            &mut gmem.clone(),
            &dev,
            DriverModel::Cuda10,
            &tp,
        )
        .unwrap();
        // Wave model: simulate 2 resident blocks once, times 3 waves.
        let wave = time_resident(
            &k,
            &[0, 1],
            64,
            grid,
            &[out as u32],
            &mut gmem,
            &dev,
            DriverModel::Cuda10,
            &tp,
        )
        .unwrap();
        let waves = (grid as u64).div_ceil(dev.num_sms as u64 * 2);
        let estimated = wave.cycles * waves;
        let err = (estimated as f64 - exact.cycles as f64).abs() / exact.cycles as f64;
        assert!(
            err < 0.30,
            "wave model {estimated} vs exact {} — {err:.2} relative error too large",
            exact.cycles
        );
    }
}

#[cfg(test)]
mod texture_timed_tests {
    use super::*;
    use crate::ir::{KernelBuilder, Operand};

    /// Streaming texture reads: the first pass misses, a re-read of the same
    /// range hits — and the timed stats expose both.
    #[test]
    fn texture_cache_hits_on_rereads() {
        let mut b = KernelBuilder::new("texloop");
        let base = b.param();
        let out = b.param();
        let tid = b.special(crate::ir::SpecialReg::TidX);
        let addr = b.mad_u(tid.into(), Operand::ImmU(4), base.into());
        let acc = b.mov(Operand::ImmF(0.0));
        b.for_loop(Operand::ImmU(0), Operand::ImmU(4), 1, |b, _| {
            let v = b.ld(MemSpace::Texture, addr, 0, 1)[0];
            b.alu_into(acc, crate::ir::AluOp::FAdd, acc.into(), v.into());
        });
        let oa = b.mad_u(tid.into(), Operand::ImmU(4), out.into());
        b.st(MemSpace::Global, oa, 0, vec![acc.into()]);
        let k = b.finish();

        let dev = DeviceConfig::g8800gtx();
        let tp = TimingParams::for_driver(DriverModel::Cuda10);
        let mut gmem = GlobalMemory::new(1 << 16);
        let data = gmem.alloc_f32(&vec![2.5f32; 64]).unwrap();
        let out_buf = gmem.alloc(64 * 4).unwrap();
        let run = time_resident(
            &k,
            &[0],
            64,
            1,
            &[data.0 as u32, out_buf.0 as u32],
            &mut gmem,
            &dev,
            DriverModel::Cuda10,
            &tp,
        )
        .unwrap();
        // 64 threads × 4 reads = 256 line touches over 8 distinct 32B lines:
        // 8 misses, 248 hits.
        assert_eq!(run.tex_misses, 8);
        assert_eq!(run.tex_hits, 248);
        assert_eq!(gmem.read_f32(out_buf, 1).unwrap()[0], 10.0);
    }
}
