//! The CUDA occupancy calculator for compute-capability 1.x devices.
//!
//! Occupancy — resident warps over the SM's warp capacity — is the lever
//! behind the paper's final optimization step: freeing registers (18 → 17 by
//! full unrolling, → 16 by invariant code motion) and moving to 128-thread
//! blocks raised occupancy from 50 % to 67 % for another ~6 % of speedup.
//! The arithmetic below follows NVIDIA's occupancy-calculator spreadsheet
//! rules for CC 1.0/1.1:
//!
//! * warps are allocated per block at a granularity of 2 warps;
//! * registers are allocated **per block**:
//!   `ceil(regs_per_thread × 32 × ceil(warps_per_block, 2), 256)`;
//! * shared memory is allocated per block at 512-byte granularity;
//! * the block count per SM is the minimum over the thread, block, register
//!   and shared-memory limits.

use crate::device::DeviceConfig;
use serde::{Deserialize, Serialize};

/// Result of the occupancy computation for one kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Resident blocks per SM.
    pub active_blocks: u32,
    /// Resident warps per SM.
    pub active_warps: u32,
    /// The SM's warp capacity.
    pub max_warps: u32,
    /// Which resource bounds the configuration.
    pub limiter: Limiter,
}

/// The resource that limits residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Limiter {
    /// Max resident threads (or warps) per SM.
    Threads,
    /// Max resident blocks per SM.
    Blocks,
    /// Register file capacity.
    Registers,
    /// Shared-memory capacity.
    SharedMemory,
}

impl Occupancy {
    /// Occupancy as a fraction of the SM's warp capacity, in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        self.active_warps as f64 / self.max_warps as f64
    }

    /// Occupancy as a percentage.
    pub fn percent(&self) -> f64 {
        100.0 * self.fraction()
    }
}

fn ceil_to(x: u32, unit: u32) -> u32 {
    x.div_ceil(unit) * unit
}

/// Registers allocated per block under the CC-1.x per-block rule.
pub fn regs_per_block(dev: &DeviceConfig, threads_per_block: u32, regs_per_thread: u32) -> u32 {
    let warps = threads_per_block.div_ceil(dev.warp_size);
    let alloc_warps = ceil_to(warps.max(1), dev.warp_alloc_granularity);
    ceil_to(
        regs_per_thread * dev.warp_size * alloc_warps,
        dev.reg_alloc_unit,
    )
}

/// Compute occupancy for a kernel with the given block size, registers per
/// thread and shared-memory bytes per block.
///
/// Panics if the block alone exceeds a hard per-block limit (CUDA would fail
/// the launch).
pub fn occupancy(
    dev: &DeviceConfig,
    threads_per_block: u32,
    regs_per_thread: u32,
    smem_per_block: u32,
) -> Occupancy {
    assert!(threads_per_block > 0, "empty block");
    assert!(
        threads_per_block <= dev.max_threads_per_block,
        "block of {threads_per_block} exceeds device limit {}",
        dev.max_threads_per_block
    );
    let warps_per_block = threads_per_block.div_ceil(dev.warp_size);
    let max_warps = dev.max_warps_per_sm();

    // Limit 1: threads / warps per SM.
    let lim_threads = max_warps / warps_per_block;
    // Limit 2: blocks per SM.
    let lim_blocks = dev.max_blocks_per_sm;
    // Limit 3: registers.
    let rpb = regs_per_block(dev, threads_per_block, regs_per_thread);
    let lim_regs = if regs_per_thread == 0 {
        lim_blocks
    } else {
        assert!(
            rpb <= dev.regs_per_sm,
            "kernel needs {rpb} registers per block, SM has {}",
            dev.regs_per_sm
        );
        dev.regs_per_sm / rpb
    };
    // Limit 4: shared memory.
    let spb = ceil_to(smem_per_block.max(1), dev.smem_alloc_unit);
    assert!(
        spb <= dev.smem_per_sm,
        "kernel needs {spb} B shared memory, SM has {}",
        dev.smem_per_sm
    );
    let lim_smem = if smem_per_block == 0 {
        lim_blocks
    } else {
        dev.smem_per_sm / spb
    };

    let blocks = lim_threads.min(lim_blocks).min(lim_regs).min(lim_smem);
    assert!(blocks >= 1, "kernel cannot be resident at all");
    let limiter = if blocks == lim_threads {
        Limiter::Threads
    } else if blocks == lim_regs && regs_per_thread > 0 {
        Limiter::Registers
    } else if blocks == lim_smem && smem_per_block > 0 {
        Limiter::SharedMemory
    } else {
        Limiter::Blocks
    };
    Occupancy {
        active_blocks: blocks,
        active_warps: blocks * warps_per_block,
        max_warps,
        limiter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g80() -> DeviceConfig {
        DeviceConfig::g8800gtx()
    }

    // --- The paper's three configurations (Sec. IV-A) ---

    #[test]
    fn paper_baseline_18_regs_block_192_is_50_percent() {
        // regs/block = ceil(18*32*6, 256) = 3456 → 8192/3456 = 2 blocks
        // → 12 warps of 24 → 50 %.
        let o = occupancy(&g80(), 192, 18, 192 * 16);
        assert_eq!(o.active_blocks, 2);
        assert_eq!(o.active_warps, 12);
        assert!((o.percent() - 50.0).abs() < 1e-9);
        assert_eq!(o.limiter, Limiter::Registers);
    }

    #[test]
    fn paper_unrolled_17_regs_still_50_percent() {
        // Unrolling frees one register (18→17) but occupancy stays 50 %:
        // the speedup at this step is purely from instruction reduction.
        let o = occupancy(&g80(), 192, 17, 192 * 16);
        assert_eq!(o.active_warps, 12);
        assert!((o.percent() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn paper_tuned_16_regs_block_128_is_67_percent() {
        // regs/block = ceil(16*32*4, 256) = 2048 → 4 blocks → 16 warps → 66.7 %.
        let o = occupancy(&g80(), 128, 16, 128 * 16);
        assert_eq!(o.active_blocks, 4);
        assert_eq!(o.active_warps, 16);
        assert!((o.fraction() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn seventeen_regs_at_block_128_is_only_50_percent() {
        // Without the ICM register (17 regs), block 128 allocates
        // ceil(17*32*4, 256) = 2304 regs/block → 3 blocks → 12 warps → 50 %.
        let o = occupancy(&g80(), 128, 17, 128 * 16);
        assert_eq!(o.active_blocks, 3);
        assert!((o.percent() - 50.0).abs() < 1e-9);
    }

    // --- General calculator behaviour ---

    #[test]
    fn tiny_blocks_hit_the_block_limit() {
        let o = occupancy(&g80(), 32, 4, 0);
        assert_eq!(o.active_blocks, 8);
        assert_eq!(o.limiter, Limiter::Blocks);
        assert_eq!(o.active_warps, 8);
    }

    #[test]
    fn zero_resource_kernel_hits_thread_limit() {
        let o = occupancy(&g80(), 256, 8, 0);
        assert_eq!(o.active_blocks, 3);
        assert_eq!(o.active_warps, 24);
        assert!((o.percent() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn shared_memory_limits_residency() {
        // 9 KB per block → only one block fits in 16 KB.
        let o = occupancy(&g80(), 64, 8, 9 * 1024);
        assert_eq!(o.active_blocks, 1);
        assert_eq!(o.limiter, Limiter::SharedMemory);
    }

    #[test]
    fn warp_alloc_granularity_matters() {
        // 96 threads = 3 warps, allocated as 4: regs/block = ceil(20*32*4,256)=2560
        // → 3 blocks, not the 4 a naive per-thread model would give (8192/(20*96)=4).
        let o = occupancy(&g80(), 96, 20, 0);
        assert_eq!(o.active_blocks, 3);
    }

    #[test]
    #[should_panic]
    fn oversized_block_rejected() {
        occupancy(&g80(), 1024, 8, 0);
    }

    #[test]
    #[should_panic]
    fn impossible_register_demand_rejected() {
        occupancy(&g80(), 512, 64, 0); // 64 regs × 512 threads ≫ 8192
    }

    #[test]
    fn gt200_has_more_headroom() {
        let o = occupancy(&DeviceConfig::gtx280(), 128, 16, 2048);
        assert!(
            o.active_warps > 16,
            "GT200's larger register file should admit more warps"
        );
    }

    // --- Register-allocation granularity at exact 256-register multiples ---

    #[test]
    fn reg_alloc_at_exact_unit_multiple_does_not_round() {
        // 16 regs × 128 threads = 2048 = 8 × 256: already on the allocation
        // grain, so no rounding waste — this exactness is what makes the
        // paper's 16-register kernel reach 4 blocks (8192/2048).
        assert_eq!(regs_per_block(&g80(), 128, 16), 2048);
        // One register more crosses the boundary: 17 × 128 = 2176 rounds up
        // to the next 256 multiple.
        assert_eq!(regs_per_block(&g80(), 128, 17), 2304);
    }

    #[test]
    fn reg_alloc_minimum_granule() {
        // 32 threads allocate as 2 warps (warp granularity 2): 4 regs × 64
        // threads = 256 — exactly one allocation unit, no rounding.
        assert_eq!(regs_per_block(&g80(), 32, 4), 256);
        // 3 regs × 64 = 192 rounds up to a full unit.
        assert_eq!(regs_per_block(&g80(), 32, 3), 256);
    }

    #[test]
    fn exact_multiple_boundary_shifts_block_count() {
        // At 2048 regs/block the SM fits exactly 4 blocks; the 2304 of one
        // extra register fits only 3 — the boundary the paper's ICM
        // optimisation (17 → 16 regs) exploits.
        assert_eq!(g80().regs_per_sm / regs_per_block(&g80(), 128, 16), 4);
        assert_eq!(g80().regs_per_sm / regs_per_block(&g80(), 128, 17), 3);
    }

    #[test]
    fn gt200_alloc_unit_is_512() {
        // Same kernel on GT200: 16 × 128 = 2048 = 4 × 512 — still exact.
        assert_eq!(regs_per_block(&DeviceConfig::gtx280(), 128, 16), 2048);
        // 17 × 128 = 2176 rounds to 2560 on the coarser 512 grain (vs
        // 2304 on G80's 256 grain).
        assert_eq!(regs_per_block(&DeviceConfig::gtx280(), 128, 17), 2560);
    }
}
