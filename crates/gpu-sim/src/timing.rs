//! Timing constants for the cycle-level engine.
//!
//! The *mechanisms* of the model (coalescing, warp scheduling, scoreboarding,
//! memory-pipeline serialization) live in [`crate::exec::timed`]; this module
//! holds the calibrated constants. Per DESIGN.md we fit the handful of free
//! constants once against the shape of the paper's Figure 10 (orderings and
//! approximate ratios), not against absolute 2006-era cycle counts.
//!
//! Sources for the mechanistic values:
//! * G80 issues one warp instruction per 4 shader cycles (8 SPs × 4 clocks
//!   to cover 32 lanes).
//! * Transcendental/special-function ops run on the 2 SFUs at 1/4 rate →
//!   16 cycles per warp.
//! * Global-memory latency was reported as 400–600 cycles in the CUDA guide.

use crate::driver::DriverModel;
use serde::{Deserialize, Serialize};

/// Cycle-cost constants used by the timed executor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Cycles to issue one ALU warp instruction (G80: 4).
    pub issue_alu: u64,
    /// Cycles to issue one SFU (rsqrt, etc.) warp instruction (G80: 16).
    pub issue_sfu: u64,
    /// Cycles to issue one memory warp instruction (address path), before
    /// the transactions themselves are accounted.
    pub issue_mem: u64,
    /// Cycles to issue one shared-memory warp access per conflict pass.
    pub issue_smem: u64,
    /// Round-trip global-memory latency from issue to data-ready.
    pub mem_latency: u64,
    /// Memory-pipeline occupancy per 32-byte transaction chunk: the SM's
    /// path to DRAM is busy this many cycles for every 32 bytes of a
    /// transaction (so a 128B transaction holds it 4× longer).
    pub cycles_per_32b: u64,
    /// Fixed memory-pipeline occupancy per transaction (command overhead),
    /// regardless of size.
    pub cycles_per_transaction: u64,
    /// Maximum in-flight global loads per warp before issue stalls
    /// (G80-class MSHR limit per warp).
    pub max_outstanding_loads: u32,
    /// Cycles charged for the `bar.sync` instruction itself.
    pub issue_sync: u64,
    /// Latency of a texture fetch that hits the per-SM texture cache
    /// (the texture pipeline is long even on a hit — ~100 cycles on G80).
    pub tex_hit_latency: u64,
    /// Step-budget watchdog for the timed engine: a launch that issues more
    /// than this many warp instructions on one SM is killed with
    /// [`crate::fault::FaultKind::WatchdogTimeout`] — the simulated analogue
    /// of the driver's display-watchdog kernel timeout. `None` disables it
    /// (the default; long soak runs opt in).
    pub watchdog_instructions: Option<u64>,
}

impl TimingParams {
    /// Constants for the given driver revision.
    ///
    /// Calibration notes (see `bench/src/bin/fig10_membench.rs` for the
    /// experiment these were fitted on):
    /// * `Cuda10` — tall per-transaction overhead: the original coalescing
    ///   path issued uncoalesced accesses as fully serialized transactions.
    /// * `Cuda11` — same hardware, but the driver merges same-line requests
    ///   (fewer, larger transactions) and we observed the paper's flattened
    ///   profile emerges with a slightly higher fixed latency — consistent
    ///   with a driver that trades latency for fewer commands.
    /// * `Cuda22` — segment-based coalescing plus a better compiler:
    ///   lower latency, moderate per-transaction overhead.
    pub fn for_driver(driver: DriverModel) -> TimingParams {
        let base = TimingParams {
            issue_alu: 4,
            issue_sfu: 16,
            issue_mem: 4,
            issue_smem: 4,
            mem_latency: 450,
            cycles_per_32b: 1,
            cycles_per_transaction: 3,
            max_outstanding_loads: 2,
            issue_sync: 4,
            tex_hit_latency: 110,
            watchdog_instructions: None,
        };
        match driver {
            DriverModel::Cuda10 => TimingParams {
                mem_latency: 520,
                cycles_per_transaction: 4,
                ..base
            },
            DriverModel::Cuda11 => TimingParams {
                mem_latency: 560,
                cycles_per_transaction: 2,
                ..base
            },
            DriverModel::Cuda22 => TimingParams {
                mem_latency: 430,
                cycles_per_transaction: 3,
                ..base
            },
        }
    }

    /// Memory-pipeline busy time for one transaction of `bytes`.
    #[inline]
    pub fn transaction_busy(&self, bytes: u32) -> u64 {
        self.cycles_per_transaction + self.cycles_per_32b * (bytes as u64).div_ceil(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_exist_for_all_drivers() {
        for d in DriverModel::ALL {
            let p = TimingParams::for_driver(d);
            assert!(p.mem_latency > 0 && p.issue_alu > 0);
        }
    }

    #[test]
    fn bigger_transactions_hold_the_pipe_longer() {
        let p = TimingParams::for_driver(DriverModel::Cuda10);
        assert!(p.transaction_busy(128) > p.transaction_busy(32));
        assert_eq!(
            p.transaction_busy(128) - p.transaction_busy(32),
            3 * p.cycles_per_32b
        );
    }

    #[test]
    fn cuda11_has_cheaper_transactions_than_cuda10() {
        // The flattening mechanism: uncoalesced accesses cost relatively less.
        let p10 = TimingParams::for_driver(DriverModel::Cuda10);
        let p11 = TimingParams::for_driver(DriverModel::Cuda11);
        assert!(p11.cycles_per_transaction < p10.cycles_per_transaction);
    }
}
