//! Host↔device transfer model (PCIe).
//!
//! The paper's Figure 12 measures "from copying the data to the device,
//! through the kernel invocation till after copying the results back" — so
//! the end-to-end Gravit harness needs a transfer-time model. A 2008-era
//! PCIe 1.1 ×16 link delivers ~3 GB/s of effective pinned-memory bandwidth
//! with a fixed per-copy overhead of a few microseconds.

use serde::{Deserialize, Serialize};

use crate::fault::{DeviceError, DeviceResult, FaultKind};

/// PCIe link model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcieModel {
    /// Effective bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Fixed overhead per `cudaMemcpy` call, in seconds (driver + DMA setup).
    pub per_copy_overhead_s: f64,
}

impl PcieModel {
    /// PCIe 1.1 ×16, the paper's platform (Core 2 Duo host).
    pub fn pcie1_x16() -> Self {
        PcieModel {
            bandwidth: 3.0e9,
            per_copy_overhead_s: 10e-6,
        }
    }

    /// A validated custom link model.
    pub fn new(bandwidth: f64, per_copy_overhead_s: f64) -> DeviceResult<Self> {
        let m = PcieModel {
            bandwidth,
            per_copy_overhead_s,
        };
        m.validate()?;
        Ok(m)
    }

    /// Check the model parameters are physical.
    pub fn validate(&self) -> DeviceResult<()> {
        if !(self.bandwidth > 0.0 && self.bandwidth.is_finite()) {
            return Err(DeviceError::new(FaultKind::BadConfig {
                reason: format!(
                    "PCIe bandwidth must be positive and finite, got {}",
                    self.bandwidth
                ),
            }));
        }
        if !(self.per_copy_overhead_s >= 0.0 && self.per_copy_overhead_s.is_finite()) {
            return Err(DeviceError::new(FaultKind::BadConfig {
                reason: format!(
                    "per-copy overhead must be non-negative and finite, got {}",
                    self.per_copy_overhead_s
                ),
            }));
        }
        Ok(())
    }

    /// Time to move `bytes` in one copy.
    pub fn copy_time_s(&self, bytes: u64) -> f64 {
        assert!(self.bandwidth > 0.0);
        self.per_copy_overhead_s + bytes as f64 / self.bandwidth
    }

    /// Time for a sequence of copies of the given sizes (each pays overhead —
    /// which is why layouts that split one buffer into several arrays pay a
    /// small extra cost the paper's SoA variants accept).
    pub fn copies_time_s(&self, sizes: &[u64]) -> f64 {
        sizes.iter().map(|&b| self.copy_time_s(b)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_time_scales_with_bytes() {
        let p = PcieModel::pcie1_x16();
        let t1 = p.copy_time_s(1 << 20);
        let t2 = p.copy_time_s(2 << 20);
        assert!(t2 > t1);
        assert!((t2 - t1 - (1 << 20) as f64 / p.bandwidth).abs() < 1e-12);
    }

    #[test]
    fn many_small_copies_cost_more_than_one_big_one() {
        let p = PcieModel::pcie1_x16();
        let one = p.copy_time_s(7 << 20);
        let seven = p.copies_time_s(&[1 << 20; 7]);
        assert!(seven > one);
    }

    #[test]
    fn zero_bytes_still_pays_overhead() {
        let p = PcieModel::pcie1_x16();
        assert_eq!(p.copy_time_s(0), p.per_copy_overhead_s);
    }

    #[test]
    fn unphysical_link_models_are_rejected() {
        assert!(PcieModel::new(0.0, 10e-6).is_err());
        assert!(PcieModel::new(f64::NAN, 10e-6).is_err());
        assert!(PcieModel::new(3.0e9, -1.0).is_err());
        assert!(PcieModel::new(3.0e9, 10e-6).is_ok());
        assert!(PcieModel::pcie1_x16().validate().is_ok());
    }
}
