//! Per-SM texture cache model.
//!
//! Pre-Fermi devices had no general-purpose cache, but the *texture* path
//! went through a small read-only cache per SM (≈ 8 KiB on G80, ~32-byte
//! lines). Binding a buffer to a texture and fetching with `tex1Dfetch` was
//! the standard workaround for access patterns the CC-1.x coalescer punished
//! — the road the paper explicitly does not take ("texture- and constant
//! memory … will not be discussed here"). We model it so the comparison the
//! paper skipped can be run (see the `table_texture` experiment).
//!
//! The model is a direct-mapped cache of 32-byte lines: small, deterministic
//! and conservative (a real 20-way anything would only hit more often; for
//! the streaming access patterns of the membench kernels associativity is
//! irrelevant).

/// A direct-mapped read-only cache of 32-byte lines.
#[derive(Debug, Clone)]
pub struct TexCache {
    /// Tag per set (`None` = cold).
    tags: Vec<Option<u64>>,
    /// Hits observed.
    pub hits: u64,
    /// Misses observed (each implies a 32-byte line fill).
    pub misses: u64,
}

/// Cache line size in bytes.
pub const TEX_LINE: u64 = 32;

impl TexCache {
    /// Cache with `capacity_bytes` of storage (G80: 8 KiB per SM).
    pub fn new(capacity_bytes: u64) -> TexCache {
        let lines = (capacity_bytes / TEX_LINE).max(1) as usize;
        assert!(
            lines.is_power_of_two(),
            "cache line count must be a power of two"
        );
        TexCache {
            tags: vec![None; lines],
            hits: 0,
            misses: 0,
        }
    }

    /// The G80 per-SM texture cache.
    pub fn g80() -> TexCache {
        TexCache::new(8 * 1024)
    }

    /// Access the line containing `addr`; returns `true` on a hit and fills
    /// the line on a miss.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / TEX_LINE;
        let set = (line as usize) & (self.tags.len() - 1);
        if self.tags[set] == Some(line) {
            self.hits += 1;
            true
        } else {
            self.tags[set] = Some(line);
            self.misses += 1;
            false
        }
    }

    /// Distinct lines touched by an access of `bytes` at `addr` (an aligned
    /// 4/8/16-byte access touches exactly one 32-byte line).
    pub fn lines_of(addr: u64, bytes: u64) -> impl Iterator<Item = u64> {
        let first = addr / TEX_LINE;
        let last = (addr + bytes - 1) / TEX_LINE;
        (first..=last).map(|l| l * TEX_LINE)
    }

    /// Hit rate so far (0 when untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = TexCache::new(1024);
        assert!(!c.access(100));
        assert!(c.access(100));
        assert!(c.access(96), "same 32B line");
        assert_eq!(c.misses, 1);
        assert_eq!(c.hits, 2);
    }

    #[test]
    fn distinct_lines_do_not_alias_within_capacity() {
        let mut c = TexCache::new(1024); // 32 lines
        for i in 0..32u64 {
            assert!(!c.access(i * 32));
        }
        for i in 0..32u64 {
            assert!(c.access(i * 32), "line {i} should still be resident");
        }
    }

    #[test]
    fn capacity_conflicts_evict() {
        let mut c = TexCache::new(1024); // 32 lines, direct-mapped
        assert!(!c.access(0));
        assert!(!c.access(32 * 32)); // same set, different tag
        assert!(!c.access(0), "evicted by the aliasing line");
    }

    #[test]
    fn lines_of_spans() {
        let v: Vec<u64> = TexCache::lines_of(28, 8).collect();
        assert_eq!(v, vec![0, 32], "an 8-byte access at 28 straddles two lines");
        let v: Vec<u64> = TexCache::lines_of(64, 16).collect();
        assert_eq!(v, vec![64]);
    }

    #[test]
    fn hit_rate_accounting() {
        let mut c = TexCache::new(64);
        assert_eq!(c.hit_rate(), 0.0);
        c.access(0);
        c.access(0);
        c.access(0);
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
