//! Simulated device global memory with a built-in sanitizer.
//!
//! A flat byte-addressable store with a bump allocator. Kernel `Ld`/`St`
//! instructions operate on this memory through typed, bounds- and
//! alignment-checked accessors, so layout bugs (the paper's whole subject)
//! surface as typed [`DeviceError`]s instead of silently wrong physics.
//!
//! The sanitizer keeps a shadow byte map mirroring the data:
//!
//! * every allocation is preceded by a [`REDZONE`]-byte **guard band**
//!   (alignment padding is folded into it), so an off-by-one stride or
//!   padding bug faults as [`FaultKind::OutOfBounds`] with `redzone = true`
//!   at the exact faulting access;
//! * fresh allocations are **poison-filled**: loading a byte that was never
//!   stored (by a kernel, [`GlobalMemory::upload`] or
//!   [`GlobalMemory::alloc_zeroed`]) is a [`FaultKind::UninitializedRead`];
//! * every 32-bit word carries an **ECC-style checksum** updated by every
//!   legitimate store path. A soft error (a bit flip injected through
//!   [`GlobalMemory::corrupt_bit`], the model of a cosmic-ray strike on
//!   non-ECC GDDR) perturbs the data *without* updating the checksum, so
//!   host readback ([`GlobalMemory::download`]) and whole-memory scans
//!   ([`GlobalMemory::verify_all`]) surface the corruption as a typed
//!   [`FaultKind::EccMismatch`] at the exact word instead of silently wrong
//!   physics.

use crate::fault::{DeviceError, DeviceResult, FaultKind};
use crate::ir::MemSpace;

/// Alignment guaranteed by [`GlobalMemory::alloc`] — `cudaMalloc` guarantees
/// at least 256 bytes, which also satisfies every coalescing base-alignment
/// rule in [`crate::coalesce`].
pub const ALLOC_ALIGN: u64 = 256;

/// Minimum guard-band bytes preceding every allocation. Equal to
/// [`ALLOC_ALIGN`] so redzones never perturb the base alignment the
/// coalescing rules depend on.
pub const REDZONE: u64 = ALLOC_ALIGN;

/// Byte value poison-filled into fresh allocations (visible in hex dumps).
pub const POISON_BYTE: u8 = 0xA5;

// Shadow states, one byte per data byte.
const SH_UNALLOC: u8 = 0; // never allocated (includes the tail of the space)
const SH_REDZONE: u8 = 1; // guard band between allocations
const SH_POISON: u8 = 2; // allocated, never written
const SH_INIT: u8 = 3; // allocated and written

/// A device pointer: byte offset into the simulated global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DevicePtr(pub u64);

impl DevicePtr {
    /// Pointer arithmetic in bytes.
    #[inline]
    pub fn offset(self, bytes: u64) -> DevicePtr {
        DevicePtr(self.0 + bytes)
    }

    /// The raw address.
    #[inline]
    pub fn addr(self) -> u64 {
        self.0
    }
}

/// One live allocation, as tracked for [`GlobalMemory::free`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AllocRecord {
    /// Value of the bump pointer before this allocation (restored on free).
    prev_next: u64,
    /// Base address handed to the caller.
    start: u64,
    /// Requested size in bytes (redzone/padding excluded).
    size: u64,
}

/// Simulated device global memory with a bump allocator and sanitizer
/// shadow map.
///
/// Equality compares the *entire* device state — data, shadow map, ECC
/// checksums and allocator bookkeeping — which is exactly the witness the
/// parallel-executor difftests need for "bit-identical to sequential".
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalMemory {
    data: Vec<u8>,
    shadow: Vec<u8>,
    /// One checksum byte per 32-bit data word, maintained by every
    /// legitimate store path and deliberately *not* by [`Self::corrupt_bit`].
    ecc: Vec<u8>,
    next: u64,
    /// Live allocations in order (a stack: the bump allocator frees LIFO).
    allocs: Vec<AllocRecord>,
    /// Highest value `next` ever reached — the high-water mark of the
    /// allocator across the memory's lifetime, `free`/`reset` included.
    high_water: u64,
}

impl GlobalMemory {
    /// Create a memory of `capacity` bytes (the 8800 GTX shipped 768 MiB; the
    /// experiments here need far less, so pick what the workload requires).
    pub fn new(capacity: u64) -> Self {
        GlobalMemory {
            data: vec![0u8; capacity as usize],
            shadow: vec![SH_UNALLOC; capacity as usize],
            // Unallocated words are never verified; alloc paths refresh the
            // checksum of every word they touch, so the initial fill is moot.
            ecc: vec![0u8; (capacity as usize).div_ceil(4)],
            next: 0,
            allocs: Vec::new(),
            high_water: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.data.len() as u64
    }

    /// Bytes consumed by the allocator so far — allocations plus their
    /// redzones and alignment padding. Deterministic: equal to
    /// [`GlobalMemory::footprint`] of the allocation sizes made so far.
    pub fn allocated(&self) -> u64 {
        self.next
    }

    /// The exact bytes [`GlobalMemory::allocated`] will report after
    /// allocating `sizes` in order on a fresh memory — the redzone- and
    /// alignment-aware footprint. Use it to size a memory exactly.
    pub fn footprint(sizes: &[u64]) -> u64 {
        let mut next = 0u64;
        for &s in sizes {
            let start = (next + REDZONE).next_multiple_of(ALLOC_ALIGN);
            next = start + s;
        }
        next
    }

    /// Bytes not yet consumed by the allocator: `capacity - allocated`.
    pub fn free_bytes(&self) -> u64 {
        self.capacity() - self.next
    }

    /// Highest value [`GlobalMemory::allocated`] ever reached over the
    /// memory's lifetime ([`GlobalMemory::free`] and
    /// [`GlobalMemory::reset`] lower `allocated` but never this).
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Number of live allocations.
    pub fn live_allocations(&self) -> usize {
        self.allocs.len()
    }

    /// The typed, recoverable allocation-failure error for a request of
    /// `bytes` against the current allocator state.
    fn oom(&self, bytes: u64) -> DeviceError {
        DeviceError::new(FaultKind::OutOfMemory {
            requested: bytes,
            free: self.free_bytes(),
            capacity: self.capacity(),
        })
    }

    /// Allocate `bytes`, aligned to [`ALLOC_ALIGN`], preceded by a redzone
    /// guard band and poison-filled (reading before writing is a fault).
    ///
    /// Exhaustion is never a panic and never wraps: any request the bump
    /// pointer cannot satisfy — including pathological sizes whose redzone
    /// or end address would overflow `u64` — returns the typed, recoverable
    /// [`FaultKind::OutOfMemory`] and leaves the allocator untouched.
    pub fn alloc(&mut self, bytes: u64) -> DeviceResult<DevicePtr> {
        let start = self
            .next
            .checked_add(REDZONE)
            .and_then(|s| s.checked_next_multiple_of(ALLOC_ALIGN))
            .ok_or_else(|| self.oom(bytes))?;
        let end = start.checked_add(bytes).ok_or_else(|| self.oom(bytes))?;
        if end > self.capacity() {
            return Err(self.oom(bytes));
        }
        self.shadow[self.next as usize..start as usize].fill(SH_REDZONE);
        self.shadow[start as usize..end as usize].fill(SH_POISON);
        self.data[start as usize..end as usize].fill(POISON_BYTE);
        self.refresh_ecc(start, end);
        self.allocs.push(AllocRecord {
            prev_next: self.next,
            start,
            size: bytes,
        });
        self.next = end;
        self.high_water = self.high_water.max(end);
        Ok(DevicePtr(start))
    }

    /// Free the most recent live allocation (the bump allocator is a stack,
    /// so frees must be LIFO — streaming workloads allocate a chunk, run,
    /// and free it before the next chunk). The freed range *and its redzone*
    /// revert to unallocated: any later access faults as
    /// [`FaultKind::OutOfBounds`], exactly like memory that was never
    /// allocated. Freeing a pointer that is not the top of the stack is a
    /// typed [`FaultKind::InvalidFree`], never a panic or silent corruption.
    pub fn free(&mut self, ptr: DevicePtr) -> DeviceResult<()> {
        match self.allocs.last().copied() {
            Some(rec) if rec.start == ptr.0 => {
                self.allocs.pop();
                // Unallocate the data span and the redzone/padding before it;
                // the ECC map needs no update (unallocated words are skipped
                // by verification, and a later alloc refreshes them).
                self.shadow[rec.prev_next as usize..self.next as usize].fill(SH_UNALLOC);
                self.next = rec.prev_next;
                Ok(())
            }
            top => Err(DeviceError::new(FaultKind::InvalidFree {
                ptr: ptr.0,
                expected: top.map(|r| r.start),
            })),
        }
    }

    /// Free everything: rewind the allocator to an empty memory (shadow map
    /// cleared, nothing readable). The high-water mark survives — it reports
    /// peak pressure across the whole lifetime. The `cudaDeviceReset` idiom
    /// for reusing one device arena across streaming chunks.
    pub fn reset(&mut self) {
        self.shadow[..self.next as usize].fill(SH_UNALLOC);
        self.allocs.clear();
        self.next = 0;
    }

    /// As [`GlobalMemory::alloc`], but zero-filled and marked initialized —
    /// the `cudaMalloc` + `cudaMemset(0)` idiom for output buffers whose
    /// unwritten slots are legitimately read back.
    pub fn alloc_zeroed(&mut self, bytes: u64) -> DeviceResult<DevicePtr> {
        let ptr = self.alloc(bytes)?;
        let (s, e) = (ptr.0 as usize, (ptr.0 + bytes) as usize);
        self.data[s..e].fill(0);
        self.shadow[s..e].fill(SH_INIT);
        self.refresh_ecc(s as u64, e as u64);
        Ok(ptr)
    }

    /// Copy a host byte slice to the device (`cudaMemcpy` host→device).
    /// The destination range must lie inside a live allocation.
    pub fn upload(&mut self, dst: DevicePtr, bytes: &[u8]) -> DeviceResult<()> {
        self.check_range(dst.0, bytes.len() as u64, false)?;
        let s = dst.0 as usize;
        self.data[s..s + bytes.len()].copy_from_slice(bytes);
        self.shadow[s..s + bytes.len()].fill(SH_INIT);
        self.refresh_ecc(dst.0, dst.0 + bytes.len() as u64);
        Ok(())
    }

    /// Copy device bytes back to the host (`cudaMemcpy` device→host).
    /// Reading poison (never-written) bytes is a fault, and the range's
    /// ECC checksums are verified — a soft error surfaces here as
    /// [`FaultKind::EccMismatch`] rather than as corrupted host data.
    pub fn download(&self, src: DevicePtr, len: u64) -> DeviceResult<Vec<u8>> {
        self.check_range(src.0, len, true)?;
        self.verify_range(src.0, len)?;
        let s = src.0 as usize;
        Ok(self.data[s..s + len as usize].to_vec())
    }

    /// Allocate and upload a slice of `f32` in one step; returns the pointer.
    pub fn alloc_f32(&mut self, values: &[f32]) -> DeviceResult<DevicePtr> {
        let ptr = self.alloc(values.len() as u64 * 4)?;
        for (i, v) in values.iter().enumerate() {
            self.store_f32(ptr.0 + i as u64 * 4, *v)?;
        }
        Ok(ptr)
    }

    /// Read back `n` `f32` values from `ptr`.
    pub fn read_f32(&self, ptr: DevicePtr, n: usize) -> DeviceResult<Vec<f32>> {
        (0..n)
            .map(|i| self.load_f32(ptr.0 + i as u64 * 4))
            .collect()
    }

    /// Validate an access of `width` bytes at `addr`: natural alignment,
    /// bounds, redzones, and (for loads) poison.
    #[inline]
    fn check(&self, addr: u64, width: u64, is_load: bool) -> DeviceResult<()> {
        if !addr.is_multiple_of(width) {
            return Err(DeviceError::new(FaultKind::Misaligned {
                space: MemSpace::Global,
                addr,
                width,
            }));
        }
        self.check_range(addr, width, is_load)
    }

    /// Bounds/redzone/poison validation without an alignment requirement
    /// (byte copies have none).
    fn check_range(&self, addr: u64, len: u64, is_load: bool) -> DeviceResult<()> {
        let oob = |redzone: bool| {
            DeviceError::new(FaultKind::OutOfBounds {
                space: MemSpace::Global,
                addr,
                width: len,
                limit: self.capacity(),
                redzone,
            })
        };
        let end = addr.checked_add(len).ok_or_else(|| oob(false))?;
        if end > self.capacity() {
            return Err(oob(false));
        }
        for &sh in &self.shadow[addr as usize..end as usize] {
            match sh {
                SH_UNALLOC => return Err(oob(false)),
                SH_REDZONE => return Err(oob(true)),
                SH_POISON if is_load => {
                    return Err(DeviceError::new(FaultKind::UninitializedRead {
                        addr,
                        width: len,
                    }));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Load a 32-bit word as raw bits.
    #[inline]
    pub fn load_u32(&self, addr: u64) -> DeviceResult<u32> {
        self.check(addr, 4, true)?;
        let a = addr as usize;
        Ok(u32::from_le_bytes(
            self.data[a..a + 4].try_into().expect("4-byte slice"),
        ))
    }

    /// Store a 32-bit word as raw bits.
    #[inline]
    pub fn store_u32(&mut self, addr: u64, v: u32) -> DeviceResult<()> {
        self.check(addr, 4, false)?;
        let a = addr as usize;
        self.data[a..a + 4].copy_from_slice(&v.to_le_bytes());
        self.shadow[a..a + 4].fill(SH_INIT);
        // A 4-byte-aligned store covers exactly one ECC word.
        self.ecc[a / 4] = ecc_of(&self.data[a..a + 4]);
        Ok(())
    }

    /// Load an `f32`.
    #[inline]
    pub fn load_f32(&self, addr: u64) -> DeviceResult<f32> {
        Ok(f32::from_bits(self.load_u32(addr)?))
    }

    /// Store an `f32`.
    #[inline]
    pub fn store_f32(&mut self, addr: u64, v: f32) -> DeviceResult<()> {
        self.store_u32(addr, v.to_bits())
    }

    // -- ECC-style soft-error detection ------------------------------------

    /// Recompute the checksum of every ECC word overlapping `[start, end)`.
    fn refresh_ecc(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        let cap = self.data.len();
        for w in (start as usize / 4)..=((end as usize - 1) / 4) {
            let s = w * 4;
            self.ecc[w] = ecc_of(&self.data[s..(s + 4).min(cap)]);
        }
    }

    /// Verify the ECC checksums of every *allocated* word overlapping
    /// `[addr, addr + len)`; the first mismatch is returned as
    /// [`FaultKind::EccMismatch`]. Redzone and never-allocated words are
    /// skipped (nothing legitimate ever reads them).
    pub fn verify_range(&self, addr: u64, len: u64) -> DeviceResult<()> {
        if len == 0 {
            return Ok(());
        }
        let end = (addr + len).min(self.capacity());
        if addr >= end {
            return Ok(());
        }
        let cap = self.data.len();
        for w in (addr as usize / 4)..=((end as usize - 1) / 4) {
            let s = w * 4;
            let e = (s + 4).min(cap);
            if !self.shadow[s..e]
                .iter()
                .any(|&sh| sh == SH_POISON || sh == SH_INIT)
            {
                continue;
            }
            let actual = ecc_of(&self.data[s..e]);
            let expected = self.ecc[w];
            if actual != expected {
                return Err(DeviceError::new(FaultKind::EccMismatch {
                    addr: s as u64,
                    expected,
                    actual,
                }));
            }
        }
        Ok(())
    }

    /// Scrub the whole memory: verify the ECC checksum of every allocated
    /// word. The application-level recovery loop runs this after each kernel
    /// launch so a soft error anywhere in the frame's working set — inputs a
    /// kernel already consumed included — is caught before results are
    /// accepted.
    pub fn verify_all(&self) -> DeviceResult<()> {
        self.verify_range(0, self.next)
    }

    /// Inject a soft error: flip bit `bit` (0–7) of the byte at `addr`,
    /// *without* updating the ECC checksum — the model of a radiation-induced
    /// bit flip in non-ECC device memory. The flip itself always "succeeds"
    /// (hardware does not bounds-check cosmic rays); `addr` beyond capacity
    /// or a flip in unallocated space is simply a strike on unused silicon
    /// and is reported back as `false`.
    pub fn corrupt_bit(&mut self, addr: u64, bit: u8) -> bool {
        let a = addr as usize;
        if a >= self.data.len() {
            return false;
        }
        self.data[a] ^= 1 << (bit & 7);
        matches!(self.shadow[a], SH_POISON | SH_INIT)
    }

    /// Vector load of `n` consecutive 32-bit words (n ∈ {1, 2, 4}); the CUDA
    /// rule that a 64/128-bit access must be naturally aligned is enforced.
    pub fn load_vec(&self, addr: u64, n: usize) -> DeviceResult<Vec<u32>> {
        assert!(matches!(n, 1 | 2 | 4), "vector width must be 1, 2 or 4");
        self.check(addr, 4 * n as u64, true)?;
        (0..n).map(|i| self.load_u32(addr + 4 * i as u64)).collect()
    }

    /// Vector store of `n` consecutive 32-bit words (n ∈ {1, 2, 4}).
    pub fn store_vec(&mut self, addr: u64, vals: &[u32]) -> DeviceResult<()> {
        assert!(
            matches!(vals.len(), 1 | 2 | 4),
            "vector width must be 1, 2 or 4"
        );
        self.check(addr, 4 * vals.len() as u64, false)?;
        for (i, v) in vals.iter().enumerate() {
            self.store_u32(addr + 4 * i as u64, *v)?;
        }
        Ok(())
    }

    /// Validate a 32-bit store at `addr` (alignment, bounds, redzones)
    /// without performing it. [`BlockShard`] uses this so a buffered store
    /// faults with exactly the error the real [`GlobalMemory::store_u32`]
    /// would raise — sound because allocation state never changes while a
    /// kernel is in flight.
    #[inline]
    pub fn validate_store_u32(&self, addr: u64) -> DeviceResult<()> {
        self.check(addr, 4, false)
    }
}

/// Word-granular device memory as seen by the warp stepper: everything
/// [`crate::exec::machine::exec_instr`] needs from a memory. Implemented by
/// the real [`GlobalMemory`] and by per-block [`BlockShard`] write-views, so
/// one generic executor serves both the sequential and the parallel path.
pub trait DeviceMem {
    /// Load a 32-bit word as raw bits.
    fn load_u32(&self, addr: u64) -> DeviceResult<u32>;
    /// Store a 32-bit word as raw bits.
    fn store_u32(&mut self, addr: u64, v: u32) -> DeviceResult<()>;
}

impl DeviceMem for GlobalMemory {
    #[inline]
    fn load_u32(&self, addr: u64) -> DeviceResult<u32> {
        GlobalMemory::load_u32(self, addr)
    }

    #[inline]
    fn store_u32(&mut self, addr: u64, v: u32) -> DeviceResult<()> {
        GlobalMemory::store_u32(self, addr, v)
    }
}

/// A per-block copy-on-write view over a shared, immutable [`GlobalMemory`].
///
/// The parallel executor runs each block against its own shard: loads read
/// the block's own buffered writes first (read-your-own-writes) and fall
/// through to the frozen base otherwise; stores are validated against the
/// base — allocation state is immutable during a launch, so validity is
/// identical to what the sequential executor would decide — and buffered at
/// word granularity. After the blocks finish, [`BlockShard::into_writes`]
/// yields the final value of every word the block wrote, and the merge step
/// replays those through the real [`GlobalMemory::store_u32`] in ascending
/// block-id (then address) order. Because the sequential end state of every
/// word depends only on the *last* value legitimately stored to it — data,
/// `SH_INIT` shadow, and the ECC checksum are all pure functions of that
/// value — the replay reproduces the sequential executor's memory, shadow
/// map, and ECC state bit-identically (CUDA blocks are independent by
/// construction: no block reads another block's writes within one launch).
#[derive(Debug)]
pub struct BlockShard<'a> {
    base: &'a GlobalMemory,
    writes: std::collections::HashMap<u64, u32>,
}

impl<'a> BlockShard<'a> {
    /// A shard with no buffered writes over `base`.
    pub fn new(base: &'a GlobalMemory) -> Self {
        BlockShard {
            base,
            writes: std::collections::HashMap::new(),
        }
    }

    /// Number of distinct words written so far.
    pub fn written_words(&self) -> usize {
        self.writes.len()
    }

    /// The block's buffered writes — the final value of every word it
    /// stored — in ascending address order, ready to replay.
    pub fn into_writes(self) -> Vec<(u64, u32)> {
        let mut ws: Vec<(u64, u32)> = self.writes.into_iter().collect();
        ws.sort_unstable_by_key(|&(a, _)| a);
        ws
    }
}

impl DeviceMem for BlockShard<'_> {
    #[inline]
    fn load_u32(&self, addr: u64) -> DeviceResult<u32> {
        // Buffered keys are always 4-aligned and validated, so a misaligned
        // or out-of-bounds load never matches and faults in the base below.
        if let Some(&v) = self.writes.get(&addr) {
            return Ok(v);
        }
        self.base.load_u32(addr)
    }

    #[inline]
    fn store_u32(&mut self, addr: u64, v: u32) -> DeviceResult<()> {
        self.base.validate_store_u32(addr)?;
        self.writes.insert(addr, v);
        Ok(())
    }
}

/// Host-side admission control over a device-memory budget.
///
/// A `MemoryBudget` accounts for *reservations* — planned footprints checked
/// **before** any byte is uploaded, so a launch that cannot fit is rejected
/// up front (typed [`FaultKind::OutOfMemory`]) instead of failing halfway
/// through a partial upload. Multiple tenants (or pipeline stages) can
/// reserve against one budget; [`MemoryBudget::high_water`] reports the peak
/// concurrent reservation for capacity planning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    capacity: u64,
    reserved: u64,
    high_water: u64,
}

impl MemoryBudget {
    /// A budget of `capacity` bytes with nothing reserved.
    pub fn new(capacity: u64) -> Self {
        MemoryBudget {
            capacity,
            reserved: 0,
            high_water: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently reserved.
    pub fn reserved(&self) -> u64 {
        self.reserved
    }

    /// Bytes still available to reserve.
    pub fn remaining(&self) -> u64 {
        self.capacity - self.reserved
    }

    /// Peak concurrent reservation over the budget's lifetime.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Whether a reservation of `bytes` would be admitted right now.
    pub fn admits(&self, bytes: u64) -> bool {
        bytes <= self.remaining()
    }

    /// Reserve `bytes`, or reject with a typed [`FaultKind::OutOfMemory`]
    /// (the budget is left unchanged on rejection).
    pub fn reserve(&mut self, bytes: u64) -> DeviceResult<()> {
        if !self.admits(bytes) {
            return Err(DeviceError::new(FaultKind::OutOfMemory {
                requested: bytes,
                free: self.remaining(),
                capacity: self.capacity,
            }));
        }
        self.reserved += bytes;
        self.high_water = self.high_water.max(self.reserved);
        Ok(())
    }

    /// Release a prior reservation of `bytes` (saturating: releasing more
    /// than is reserved clamps to zero rather than wrapping).
    pub fn release(&mut self, bytes: u64) {
        self.reserved = self.reserved.saturating_sub(bytes);
    }
}

/// Checksum of one data word (up to 4 bytes): an XOR fold seeded with a
/// constant so an all-zero word has a non-zero checksum. Any single-bit data
/// flip changes the fold, which is all the soft-error model needs.
#[inline]
fn ecc_of(word: &[u8]) -> u8 {
    word.iter().fold(0x5Au8, |acc, &b| acc ^ b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut m = GlobalMemory::new(1 << 16);
        let a = m.alloc(100).unwrap();
        let b = m.alloc(100).unwrap();
        assert_eq!(a.0 % ALLOC_ALIGN, 0);
        assert_eq!(b.0 % ALLOC_ALIGN, 0);
        assert!(
            b.0 >= a.0 + 100 + REDZONE,
            "allocations must be separated by a redzone"
        );
    }

    #[test]
    fn footprint_predicts_allocated_exactly() {
        let sizes = [100u64, 0, 4096, 28 * 64, 17];
        let mut m = GlobalMemory::new(GlobalMemory::footprint(&sizes));
        for s in sizes {
            m.alloc(s).unwrap();
        }
        assert_eq!(m.allocated(), m.capacity());
        // One more byte does not fit.
        assert_eq!(m.alloc(1).unwrap_err().kind.name(), "OutOfMemory");
    }

    #[test]
    fn f32_roundtrip_including_nan_payloads() {
        let mut m = GlobalMemory::new(1024);
        let p = m.alloc(16).unwrap();
        m.store_f32(p.0, -0.0).unwrap();
        assert_eq!(m.load_f32(p.0).unwrap().to_bits(), (-0.0f32).to_bits());
        m.store_u32(p.0 + 4, 0x7FC0_1234).unwrap(); // NaN with payload survives as bits
        assert_eq!(m.load_u32(p.0 + 4).unwrap(), 0x7FC0_1234);
    }

    #[test]
    fn upload_download_roundtrip() {
        let mut m = GlobalMemory::new(4096);
        let p = m.alloc(8).unwrap();
        m.upload(p, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        assert_eq!(m.download(p, 8).unwrap(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn alloc_f32_and_read_back() {
        let mut m = GlobalMemory::new(4096);
        let xs = [1.0f32, -2.5, 3.25];
        let p = m.alloc_f32(&xs).unwrap();
        assert_eq!(m.read_f32(p, 3).unwrap(), xs.to_vec());
    }

    #[test]
    fn oob_load_is_a_typed_fault() {
        let m = GlobalMemory::new(16);
        let e = m.load_u32(16).unwrap_err();
        assert!(matches!(
            e.kind,
            FaultKind::OutOfBounds {
                addr: 16,
                width: 4,
                ..
            }
        ));
    }

    #[test]
    fn misaligned_vec_load_is_a_typed_fault() {
        let mut m = GlobalMemory::new(1024);
        let p = m.alloc(32).unwrap();
        // float4 load at +4 is not 16-byte aligned.
        let e = m.load_vec(p.0 + 4, 4).unwrap_err();
        assert!(matches!(e.kind, FaultKind::Misaligned { width: 16, .. }));
    }

    #[test]
    fn oom_is_a_typed_fault() {
        let mut m = GlobalMemory::new(1024);
        m.alloc(256).unwrap();
        let e = m.alloc(4096).unwrap_err();
        match e.kind {
            FaultKind::OutOfMemory {
                requested,
                free,
                capacity,
            } => {
                assert_eq!(requested, 4096);
                assert_eq!(free, 1024 - m.allocated());
                assert_eq!(capacity, 1024);
            }
            k => panic!("wrong kind {k:?}"),
        }
    }

    /// The exactly-capacity / capacity+1 boundary: a request that fills the
    /// memory to the last byte succeeds; one byte more is a typed OOM that
    /// leaves the allocator untouched (no partial state, no wrap, no panic).
    #[test]
    fn alloc_boundary_at_exact_capacity() {
        let fits = GlobalMemory::footprint(&[300]);
        let mut m = GlobalMemory::new(fits);
        let p = m.alloc(300).unwrap();
        assert_eq!(m.allocated(), fits);
        assert_eq!(m.free_bytes(), 0);
        m.free(p).unwrap();

        // Same request against one byte less: rejected, allocator untouched.
        let mut m = GlobalMemory::new(fits - 1);
        let before = m.allocated();
        let e = m.alloc(300).unwrap_err();
        assert!(matches!(e.kind, FaultKind::OutOfMemory { .. }));
        assert_eq!(
            m.allocated(),
            before,
            "failed alloc must not move the bump pointer"
        );
        assert_eq!(m.live_allocations(), 0);
        // And a request of capacity+1 raw bytes on a fresh memory.
        let e = m.alloc(m.capacity() + 1).unwrap_err();
        assert!(matches!(e.kind, FaultKind::OutOfMemory { .. }));
    }

    /// Pathological sizes whose end address (or redzone arithmetic) would
    /// overflow u64 are typed OOMs, never wraps or panics.
    #[test]
    fn overflowing_requests_are_typed_oom_not_wraps() {
        let mut m = GlobalMemory::new(1024);
        for bytes in [u64::MAX, u64::MAX - 1, u64::MAX - REDZONE, 1 << 63] {
            let e = m.alloc(bytes).unwrap_err();
            assert!(
                matches!(e.kind, FaultKind::OutOfMemory { .. }),
                "{bytes:#x}"
            );
        }
        assert_eq!(m.allocated(), 0);
        assert!(
            m.alloc(64).is_ok(),
            "allocator still serviceable after rejections"
        );
    }

    #[test]
    fn free_is_lifo_and_restores_unallocated_state() {
        let mut m = GlobalMemory::new(1 << 16);
        let a = m.alloc(100).unwrap();
        let b = m.alloc(200).unwrap();
        let after_a = GlobalMemory::footprint(&[100]);
        // Freeing out of order is a typed fault naming the legal victim.
        let e = m.free(a).unwrap_err();
        assert!(
            matches!(e.kind, FaultKind::InvalidFree { ptr, expected: Some(x) }
                if ptr == a.0 && x == b.0),
            "got {:?}",
            e.kind
        );
        m.free(b).unwrap();
        assert_eq!(m.allocated(), after_a);
        // The freed span (and its redzone) is unallocated again.
        let e = m.load_u32(b.0).unwrap_err();
        assert!(matches!(
            e.kind,
            FaultKind::OutOfBounds { redzone: false, .. }
        ));
        m.free(a).unwrap();
        assert_eq!(m.allocated(), 0);
        let e = m.free(a).unwrap_err();
        assert!(matches!(
            e.kind,
            FaultKind::InvalidFree { expected: None, .. }
        ));
        // Alloc/free cycles do not leak: the same sequence fits again.
        assert_eq!(m.alloc(100).unwrap(), a);
    }

    #[test]
    fn freed_then_reallocated_memory_is_poison_again() {
        let mut m = GlobalMemory::new(4096);
        let p = m.alloc(64).unwrap();
        m.store_u32(p.0, 0xFEED_FACE).unwrap();
        m.free(p).unwrap();
        let q = m.alloc(64).unwrap();
        assert_eq!(q, p, "bump pointer rewound");
        let e = m.load_u32(q.0).unwrap_err();
        assert!(
            matches!(e.kind, FaultKind::UninitializedRead { .. }),
            "stale data must not leak through a free/alloc cycle"
        );
    }

    #[test]
    fn reset_rewinds_everything_but_keeps_high_water() {
        let mut m = GlobalMemory::new(1 << 16);
        let a = m.alloc_zeroed(1000).unwrap();
        m.alloc_zeroed(2000).unwrap();
        let peak = m.allocated();
        m.reset();
        assert_eq!(m.allocated(), 0);
        assert_eq!(m.live_allocations(), 0);
        assert_eq!(m.high_water(), peak, "high-water survives reset");
        assert!(m.load_u32(a.0).is_err(), "nothing readable after reset");
        assert!(m.verify_all().is_ok());
        // The arena is fully reusable.
        let b = m.alloc_zeroed(3000).unwrap();
        assert_eq!(b.0, a.0);
        assert_eq!(m.download(b, 3000).unwrap(), vec![0u8; 3000]);
        assert!(m.high_water() >= peak);
    }

    #[test]
    fn ecc_shadow_stays_consistent_across_free_and_realloc() {
        let mut m = GlobalMemory::new(1 << 16);
        let a = m.alloc_zeroed(256).unwrap();
        m.store_u32(a.0, 0xABCD_0123).unwrap();
        let b = m.alloc_zeroed(256).unwrap();
        m.corrupt_bit(b.0 + 7, 2);
        // The corrupted word dies with the free: the whole memory verifies.
        m.free(b).unwrap();
        assert!(
            m.verify_all().is_ok(),
            "freed corruption must not trip the scrub"
        );
        let b2 = m.alloc_zeroed(256).unwrap();
        assert_eq!(b2, b);
        assert!(m.verify_all().is_ok(), "realloc refreshes the checksums");
        assert_eq!(
            m.load_u32(a.0).unwrap(),
            0xABCD_0123,
            "survivor data intact"
        );
    }

    #[test]
    fn budget_admission_reserve_release_and_high_water() {
        let mut b = MemoryBudget::new(1000);
        assert!(b.admits(1000) && !b.admits(1001));
        b.reserve(600).unwrap();
        assert_eq!(b.remaining(), 400);
        // Rejection is typed, pre-flight, and leaves the budget unchanged.
        let e = b.reserve(401).unwrap_err();
        match e.kind {
            FaultKind::OutOfMemory {
                requested,
                free,
                capacity,
            } => {
                assert_eq!((requested, free, capacity), (401, 400, 1000));
            }
            k => panic!("wrong kind {k:?}"),
        }
        assert_eq!(b.reserved(), 600);
        b.reserve(400).unwrap();
        assert_eq!(b.high_water(), 1000);
        b.release(700);
        assert_eq!(b.remaining(), 700);
        b.release(u64::MAX); // saturates, never wraps
        assert_eq!(b.reserved(), 0);
        assert_eq!(b.high_water(), 1000, "high-water survives releases");
    }

    #[test]
    fn redzone_between_allocations_is_caught() {
        let mut m = GlobalMemory::new(1 << 16);
        let a = m.alloc(256).unwrap();
        let _b = m.alloc(256).unwrap();
        // One word past the end of `a` lands in the guard band.
        let e = m.load_u32(a.0 + 256).unwrap_err();
        match e.kind {
            FaultKind::OutOfBounds { redzone, .. } => assert!(redzone, "must flag the redzone"),
            k => panic!("wrong kind {k:?}"),
        }
        // Stores are rejected identically.
        let e = m.store_u32(a.0 + 256, 1).unwrap_err();
        assert!(matches!(
            e.kind,
            FaultKind::OutOfBounds { redzone: true, .. }
        ));
    }

    #[test]
    fn poison_read_is_caught_and_stores_heal_it() {
        let mut m = GlobalMemory::new(4096);
        let p = m.alloc(64).unwrap();
        let e = m.load_u32(p.0).unwrap_err();
        assert!(matches!(e.kind, FaultKind::UninitializedRead { addr, width: 4 } if addr == p.0));
        m.store_u32(p.0, 7).unwrap();
        assert_eq!(m.load_u32(p.0).unwrap(), 7);
        // The next word is still poison.
        assert!(m.load_u32(p.0 + 4).is_err());
    }

    #[test]
    fn alloc_zeroed_reads_back_as_zero() {
        let mut m = GlobalMemory::new(4096);
        let p = m.alloc_zeroed(64).unwrap();
        assert_eq!(m.read_f32(p, 16).unwrap(), vec![0.0; 16]);
        assert_eq!(m.download(p, 64).unwrap(), vec![0u8; 64]);
    }

    #[test]
    fn partial_poison_overlap_faults_on_download() {
        let mut m = GlobalMemory::new(4096);
        let p = m.alloc(16).unwrap();
        m.store_u32(p.0, 1).unwrap();
        // Bytes 4..16 were never written.
        let e = m.download(p, 16).unwrap_err();
        assert!(matches!(e.kind, FaultKind::UninitializedRead { .. }));
        assert_eq!(m.download(p, 4).unwrap(), 1u32.to_le_bytes().to_vec());
    }

    #[test]
    fn bit_flip_is_caught_by_ecc_on_download() {
        let mut m = GlobalMemory::new(4096);
        let p = m.alloc_zeroed(64).unwrap();
        m.store_f32(p.0 + 8, 3.5).unwrap();
        assert!(m.download(p, 64).is_ok(), "healthy memory verifies clean");
        assert!(
            m.corrupt_bit(p.0 + 9, 3),
            "strike landed in a live allocation"
        );
        let e = m.download(p, 64).unwrap_err();
        match e.kind {
            FaultKind::EccMismatch {
                addr,
                expected,
                actual,
            } => {
                assert_eq!(addr, p.0 + 8, "mismatch attributed to the struck word");
                assert_ne!(expected, actual);
            }
            k => panic!("wrong kind {k:?}"),
        }
        // verify_all sees it too; untouched ranges still verify clean.
        assert!(m.verify_all().is_err());
        assert!(m.verify_range(p.0, 8).is_ok());
    }

    #[test]
    fn every_single_bit_flip_in_a_word_is_detected() {
        for bit in 0..32u8 {
            let mut m = GlobalMemory::new(1024);
            let p = m.alloc_zeroed(16).unwrap();
            m.store_u32(p.0, 0xDEAD_BEEF).unwrap();
            assert!(m.corrupt_bit(p.0 + (bit / 8) as u64, bit % 8));
            assert!(m.verify_all().is_err(), "bit {bit} flip went undetected");
        }
    }

    #[test]
    fn legitimate_store_heals_a_prior_flip() {
        let mut m = GlobalMemory::new(1024);
        let p = m.alloc_zeroed(16).unwrap();
        m.corrupt_bit(p.0 + 2, 6);
        assert!(m.verify_all().is_err());
        // Re-writing the word through a legitimate path re-syncs the ECC —
        // the re-upload-and-retry recovery model.
        m.store_u32(p.0, 0).unwrap();
        assert!(m.verify_all().is_ok());
    }

    #[test]
    fn flip_outside_live_allocations_is_harmless() {
        let mut m = GlobalMemory::new(1024);
        let _p = m.alloc_zeroed(16).unwrap();
        // Strike the redzone and far beyond capacity: reported as misses,
        // and nothing a legitimate path reads is affected.
        assert!(!m.corrupt_bit(8, 0));
        assert!(!m.corrupt_bit(1 << 40, 5));
        assert!(m.verify_all().is_ok());
    }

    #[test]
    fn vec_roundtrip() {
        let mut m = GlobalMemory::new(1024);
        let p = m.alloc(16).unwrap();
        m.store_vec(p.0, &[1, 2, 3, 4]).unwrap();
        assert_eq!(m.load_vec(p.0, 4).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(m.load_vec(p.0 + 8, 2).unwrap(), vec![3, 4]);
    }

    #[test]
    fn shard_reads_its_own_writes_and_falls_through() {
        let mut m = GlobalMemory::new(4096);
        let p = m.alloc_zeroed(64).unwrap();
        m.store_u32(p.0, 11).unwrap();
        let mut sh = BlockShard::new(&m);
        assert_eq!(DeviceMem::load_u32(&sh, p.0).unwrap(), 11, "fall-through");
        DeviceMem::store_u32(&mut sh, p.0, 22).unwrap();
        DeviceMem::store_u32(&mut sh, p.0 + 4, 33).unwrap();
        assert_eq!(DeviceMem::load_u32(&sh, p.0).unwrap(), 22, "own write");
        assert_eq!(m.load_u32(p.0).unwrap(), 11, "base untouched until commit");
        assert_eq!(sh.into_writes(), vec![(p.0, 22), (p.0 + 4, 33)]);
    }

    #[test]
    fn shard_store_heals_poison_for_its_own_loads() {
        let mut m = GlobalMemory::new(4096);
        let p = m.alloc(64).unwrap();
        let mut sh = BlockShard::new(&m);
        let e = DeviceMem::load_u32(&sh, p.0).unwrap_err();
        assert!(matches!(e.kind, FaultKind::UninitializedRead { .. }));
        DeviceMem::store_u32(&mut sh, p.0, 5).unwrap();
        assert_eq!(DeviceMem::load_u32(&sh, p.0).unwrap(), 5);
    }

    #[test]
    fn shard_faults_match_the_base_exactly() {
        let mut m = GlobalMemory::new(4096);
        let p = m.alloc(64).unwrap();
        let mut sh = BlockShard::new(&m);
        for (addr, is_load) in [
            (p.0 + 2, true),          // misaligned
            (p.0 + 2, false),         //
            (p.0 + 64, false),        // redzone
            (m.capacity() + 8, true), // out of bounds
        ] {
            let shard_err = if is_load {
                DeviceMem::load_u32(&sh, addr).unwrap_err()
            } else {
                DeviceMem::store_u32(&mut sh, addr, 1).unwrap_err()
            };
            let base_err = if is_load {
                m.load_u32(addr).unwrap_err()
            } else {
                m.clone().store_u32(addr, 1).unwrap_err()
            };
            assert_eq!(shard_err, base_err, "addr {addr:#x} is_load {is_load}");
        }
        assert_eq!(sh.written_words(), 0, "faulting stores buffer nothing");
    }

    /// Replaying a shard's writes through the real store path reproduces the
    /// sequential end state bit-exactly: data, shadow (poison healed), and
    /// ECC checksums (a prior soft error on a rewritten word is healed, just
    /// as a sequential overwrite would heal it).
    #[test]
    fn shard_replay_reproduces_sequential_state() {
        let mk = || {
            let mut m = GlobalMemory::new(4096);
            let p = m.alloc(64).unwrap();
            m.store_u32(p.0 + 8, 0xAAAA_0001).unwrap();
            m.corrupt_bit(p.0 + 8, 3);
            (m, p)
        };
        // Sequential reference.
        let (mut seq, p) = mk();
        seq.store_u32(p.0, 1).unwrap();
        seq.store_u32(p.0 + 8, 2).unwrap();
        // Sharded run, then replay.
        let (mut par, _) = mk();
        let mut sh = BlockShard::new(&par);
        DeviceMem::store_u32(&mut sh, p.0 + 8, 99).unwrap();
        DeviceMem::store_u32(&mut sh, p.0, 1).unwrap();
        DeviceMem::store_u32(&mut sh, p.0 + 8, 2).unwrap(); // last value wins
        for (a, v) in sh.into_writes() {
            par.store_u32(a, v).unwrap();
        }
        assert_eq!(seq.data, par.data);
        assert_eq!(seq.shadow, par.shadow);
        assert_eq!(seq.ecc, par.ecc);
        assert!(par.verify_all().is_ok(), "replay healed the soft error");
    }
}
