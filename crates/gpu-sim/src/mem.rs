//! Simulated device global memory.
//!
//! A flat byte-addressable store with a bump allocator. Kernel `Ld`/`St`
//! instructions operate on this memory through typed, bounds- and
//! alignment-checked accessors, so layout bugs (the paper's whole subject)
//! surface as hard errors instead of silently wrong physics.

/// Alignment guaranteed by [`GlobalMemory::alloc`] — `cudaMalloc` guarantees
/// at least 256 bytes, which also satisfies every coalescing base-alignment
/// rule in [`crate::coalesce`].
pub const ALLOC_ALIGN: u64 = 256;

/// A device pointer: byte offset into the simulated global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DevicePtr(pub u64);

impl DevicePtr {
    /// Pointer arithmetic in bytes.
    #[inline]
    pub fn offset(self, bytes: u64) -> DevicePtr {
        DevicePtr(self.0 + bytes)
    }

    /// The raw address.
    #[inline]
    pub fn addr(self) -> u64 {
        self.0
    }
}

/// Simulated device global memory with a bump allocator.
#[derive(Debug, Clone)]
pub struct GlobalMemory {
    data: Vec<u8>,
    next: u64,
}

impl GlobalMemory {
    /// Create a memory of `capacity` bytes (the 8800 GTX shipped 768 MiB; the
    /// experiments here need far less, so pick what the workload requires).
    pub fn new(capacity: u64) -> Self {
        GlobalMemory { data: vec![0u8; capacity as usize], next: 0 }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.data.len() as u64
    }

    /// Bytes allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next
    }

    /// Allocate `bytes`, aligned to [`ALLOC_ALIGN`]. Panics on exhaustion
    /// (a simulation configuration error, not a recoverable condition).
    pub fn alloc(&mut self, bytes: u64) -> DevicePtr {
        let start = self.next.next_multiple_of(ALLOC_ALIGN);
        let end = start + bytes;
        assert!(
            end <= self.capacity(),
            "device OOM: need {} bytes at {}, capacity {}",
            bytes,
            start,
            self.capacity()
        );
        self.next = end;
        DevicePtr(start)
    }

    /// Copy a host byte slice to the device (`cudaMemcpy` host→device).
    pub fn upload(&mut self, dst: DevicePtr, bytes: &[u8]) {
        let s = dst.0 as usize;
        self.data[s..s + bytes.len()].copy_from_slice(bytes);
    }

    /// Copy device bytes back to the host (`cudaMemcpy` device→host).
    pub fn download(&self, src: DevicePtr, len: u64) -> Vec<u8> {
        let s = src.0 as usize;
        self.data[s..s + len as usize].to_vec()
    }

    /// Allocate and upload a slice of `f32` in one step; returns the pointer.
    pub fn alloc_f32(&mut self, values: &[f32]) -> DevicePtr {
        let ptr = self.alloc(values.len() as u64 * 4);
        for (i, v) in values.iter().enumerate() {
            self.store_f32(ptr.0 + i as u64 * 4, *v);
        }
        ptr
    }

    /// Read back `n` `f32` values from `ptr`.
    pub fn read_f32(&self, ptr: DevicePtr, n: usize) -> Vec<f32> {
        (0..n).map(|i| self.load_f32(ptr.0 + i as u64 * 4)).collect()
    }

    #[inline]
    fn check(&self, addr: u64, width: u64) {
        assert!(
            addr % width == 0,
            "misaligned {width}-byte global access at {addr:#x}"
        );
        assert!(
            addr + width <= self.capacity(),
            "global access out of bounds: {addr:#x}+{width} > {}",
            self.capacity()
        );
    }

    /// Load a 32-bit word as raw bits.
    #[inline]
    pub fn load_u32(&self, addr: u64) -> u32 {
        self.check(addr, 4);
        let a = addr as usize;
        u32::from_le_bytes(self.data[a..a + 4].try_into().unwrap())
    }

    /// Store a 32-bit word as raw bits.
    #[inline]
    pub fn store_u32(&mut self, addr: u64, v: u32) {
        self.check(addr, 4);
        let a = addr as usize;
        self.data[a..a + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Load an `f32`.
    #[inline]
    pub fn load_f32(&self, addr: u64) -> f32 {
        f32::from_bits(self.load_u32(addr))
    }

    /// Store an `f32`.
    #[inline]
    pub fn store_f32(&mut self, addr: u64, v: f32) {
        self.store_u32(addr, v.to_bits());
    }

    /// Vector load of `n` consecutive 32-bit words (n ∈ {1, 2, 4}); the CUDA
    /// rule that a 64/128-bit access must be naturally aligned is enforced.
    pub fn load_vec(&self, addr: u64, n: usize) -> Vec<u32> {
        assert!(matches!(n, 1 | 2 | 4), "vector width must be 1, 2 or 4");
        self.check(addr, 4 * n as u64);
        (0..n).map(|i| self.load_u32(addr + 4 * i as u64)).collect()
    }

    /// Vector store of `n` consecutive 32-bit words (n ∈ {1, 2, 4}).
    pub fn store_vec(&mut self, addr: u64, vals: &[u32]) {
        assert!(matches!(vals.len(), 1 | 2 | 4), "vector width must be 1, 2 or 4");
        self.check(addr, 4 * vals.len() as u64);
        for (i, v) in vals.iter().enumerate() {
            self.store_u32(addr + 4 * i as u64, *v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut m = GlobalMemory::new(1 << 16);
        let a = m.alloc(100);
        let b = m.alloc(100);
        assert_eq!(a.0 % ALLOC_ALIGN, 0);
        assert_eq!(b.0 % ALLOC_ALIGN, 0);
        assert!(b.0 >= a.0 + 100);
    }

    #[test]
    fn f32_roundtrip_including_nan_payloads() {
        let mut m = GlobalMemory::new(1024);
        let p = m.alloc(16);
        m.store_f32(p.0, -0.0);
        assert_eq!(m.load_f32(p.0).to_bits(), (-0.0f32).to_bits());
        m.store_u32(p.0 + 4, 0x7FC0_1234); // NaN with payload survives as bits
        assert_eq!(m.load_u32(p.0 + 4), 0x7FC0_1234);
    }

    #[test]
    fn upload_download_roundtrip() {
        let mut m = GlobalMemory::new(4096);
        let p = m.alloc(8);
        m.upload(p, &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(m.download(p, 8), vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn alloc_f32_and_read_back() {
        let mut m = GlobalMemory::new(4096);
        let xs = [1.0f32, -2.5, 3.25];
        let p = m.alloc_f32(&xs);
        assert_eq!(m.read_f32(p, 3), xs.to_vec());
    }

    #[test]
    #[should_panic]
    fn oob_load_panics() {
        let m = GlobalMemory::new(16);
        m.load_u32(16);
    }

    #[test]
    #[should_panic]
    fn misaligned_vec_load_panics() {
        let mut m = GlobalMemory::new(64);
        let p = m.alloc(32);
        // float4 load at +4 is not 16-byte aligned.
        m.load_vec(p.0 + 4, 4);
    }

    #[test]
    #[should_panic]
    fn oom_panics() {
        let mut m = GlobalMemory::new(512);
        m.alloc(256);
        m.alloc(512);
    }

    #[test]
    fn vec_roundtrip() {
        let mut m = GlobalMemory::new(1024);
        let p = m.alloc(16);
        m.store_vec(p.0, &[1, 2, 3, 4]);
        assert_eq!(m.load_vec(p.0, 4), vec![1, 2, 3, 4]);
        assert_eq!(m.load_vec(p.0 + 8, 2), vec![3, 4]);
    }
}
