//! Shared-memory bank-conflict model.
//!
//! CC-1.x shared memory is organized in 16 banks of 32-bit words; a half-warp
//! access is serialized by the maximum number of distinct *addresses* mapped
//! to the same bank, with a broadcast fast path when all lanes read the same
//! word. The paper's tiled force kernel reads the *same* shared-memory word
//! from every lane of the warp (the j-th tile particle), which is exactly the
//! broadcast case — this module exists so that claim is checked rather than
//! assumed.

/// The serialization degree of a half-warp shared-memory access:
/// 1 = conflict-free (or broadcast), k = k-way conflict (k serialized passes).
///
/// `addrs` are byte addresses into shared memory (`None` = inactive lane).
/// `banks` is the bank count (16 on CC 1.x); the bank of a 32-bit word at
/// byte address `a` is `(a / 4) % banks`.
///
/// Rules implemented (CUDA programming guide, CC 1.x):
/// * lanes reading the **same 32-bit word** are satisfied by one broadcast;
///   only one word can be broadcast per access — if several words share a
///   bank, all but the broadcast word serialize;
/// * otherwise the degree is the maximum, over banks, of the number of
///   distinct words accessed in that bank.
///
/// Accesses wider than 32 bits are issued as multiple 32-bit phases by the
/// hardware; callers decompose them (see the timing engine).
pub fn conflict_degree(addrs: &[Option<u64>], banks: u32) -> u32 {
    assert!(banks.is_power_of_two() && banks > 0);
    let words: Vec<u64> = addrs.iter().flatten().map(|&a| a / 4).collect();
    if words.is_empty() {
        return 1;
    }
    // Count distinct words per bank.
    let mut per_bank: Vec<Vec<u64>> = vec![Vec::new(); banks as usize];
    for &w in &words {
        let b = (w % banks as u64) as usize;
        if !per_bank[b].contains(&w) {
            per_bank[b].push(w);
        }
    }
    // Broadcast: the hardware can broadcast one word; pick the word that is
    // read by the most lanes and discount it from its bank's serialization.
    let mut lane_counts: Vec<(u64, usize)> = Vec::new();
    for &w in &words {
        match lane_counts.iter_mut().find(|(x, _)| *x == w) {
            Some((_, c)) => *c += 1,
            None => lane_counts.push((w, 1)),
        }
    }
    let broadcast_word = lane_counts
        .iter()
        .max_by_key(|(_, c)| *c)
        .filter(|(_, c)| *c > 1)
        .map(|(w, _)| *w);
    let mut degree = 1u32;
    for (b, ws) in per_bank.iter().enumerate() {
        let mut n = ws.len() as u32;
        if let Some(bw) = broadcast_word {
            if (bw % banks as u64) as usize == b && ws.contains(&bw) && n > 0 {
                // The broadcast word is serviced in the broadcast phase, but
                // that phase still occupies one slot for this bank.
                n = n.max(1);
                if ws.len() > 1 {
                    n = ws.len() as u32; // remaining words still serialize
                }
            }
        }
        degree = degree.max(n.max(1));
    }
    degree
}

/// `true` if the access is conflict-free (degree 1).
pub fn is_conflict_free(addrs: &[Option<u64>], banks: u32) -> bool {
    conflict_degree(addrs, banks) == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lanes(f: impl Fn(u64) -> u64) -> Vec<Option<u64>> {
        (0..16).map(|k| Some(f(k))).collect()
    }

    #[test]
    fn consecutive_words_are_conflict_free() {
        assert_eq!(conflict_degree(&lanes(|k| 4 * k), 16), 1);
    }

    #[test]
    fn broadcast_same_word_is_conflict_free() {
        // All lanes read tile[j] — the force kernel's inner-loop pattern.
        assert_eq!(conflict_degree(&lanes(|_| 128), 16), 1);
    }

    #[test]
    fn stride_two_words_is_two_way() {
        assert_eq!(conflict_degree(&lanes(|k| 8 * k), 16), 2);
    }

    #[test]
    fn stride_sixteen_words_is_sixteen_way() {
        assert_eq!(conflict_degree(&lanes(|k| 64 * k), 16), 16);
    }

    #[test]
    fn odd_stride_is_conflict_free() {
        // Stride of 3 words: gcd(3,16)=1, a classic conflict-free stride.
        assert_eq!(conflict_degree(&lanes(|k| 12 * k), 16), 1);
    }

    #[test]
    fn float4_phase_pattern() {
        // One 32-bit phase of a float4 broadcast tile read: still one word.
        assert!(is_conflict_free(&lanes(|_| 16), 16));
    }

    #[test]
    fn empty_and_single_lane() {
        assert_eq!(conflict_degree(&[], 16), 1);
        assert_eq!(conflict_degree(&[Some(4)], 16), 1);
    }

    #[test]
    fn mixed_broadcast_and_conflict() {
        // 15 lanes read word 0, one lane reads word 16 (same bank 0):
        // broadcast serves word 0 but word 16 needs a second pass.
        let mut a = lanes(|_| 0);
        a[15] = Some(64);
        assert_eq!(conflict_degree(&a, 16), 2);
    }

    #[test]
    fn all_lanes_inactive_is_conflict_free() {
        // A fully predicated-off half-warp issues no shared access.
        assert_eq!(conflict_degree(&vec![None; 16], 16), 1);
    }

    #[test]
    fn inactive_lanes_do_not_count_toward_conflicts() {
        // Stride-16 words is the 16-way worst case when all lanes are
        // active; masking off the odd lanes halves the distinct words.
        let full = lanes(|k| 64 * k);
        assert_eq!(conflict_degree(&full, 16), 16);
        let half: Vec<Option<u64>> = (0..16)
            .map(|k| if k % 2 == 0 { Some(64 * k) } else { None })
            .collect();
        assert_eq!(conflict_degree(&half, 16), 8);
        // A single surviving lane can never conflict.
        let one: Vec<Option<u64>> = (0..16)
            .map(|k| if k == 7 { Some(64 * k) } else { None })
            .collect();
        assert_eq!(conflict_degree(&one, 16), 1);
    }

    #[test]
    fn broadcast_with_inactive_lanes_stays_fast() {
        // Divergent tile read: the active subset still shares one word.
        let a: Vec<Option<u64>> = (0..16)
            .map(|k| if k < 5 { Some(128) } else { None })
            .collect();
        assert_eq!(conflict_degree(&a, 16), 1);
    }

    #[test]
    fn sixteen_way_worst_case_is_capped_by_distinct_words() {
        // 16 lanes, 16 distinct words, all in bank 0: the absolute worst
        // case on CC 1.x hardware — and the degree can never exceed it.
        let a = lanes(|k| 64 * k);
        assert_eq!(conflict_degree(&a, 16), 16);
        // Two lanes per word (8 distinct words in bank 0): the broadcast
        // only rescues one word, the other seven still serialize.
        let b = lanes(|k| 64 * (k / 2));
        assert_eq!(conflict_degree(&b, 16), 8);
    }
}
