//! Device configuration: the static resources of the simulated GPU.
//!
//! The preset of record is [`DeviceConfig::g8800gtx`] — the GeForce 8800 GTX
//! the paper ran on. A GT200-class preset is included for the "different GPU
//! models" direction the paper lists as future work.

use serde::{Deserialize, Serialize};

/// Static hardware resources of the simulated device.
///
/// All quantities follow the CUDA programming guide's tables for the
/// respective compute capability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Marketing name, for reports.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Threads per warp (32 on every CUDA device).
    pub warp_size: u32,
    /// Threads per half-warp — the granularity of CC 1.x memory coalescing.
    pub half_warp: u32,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Register allocation granularity in registers (CC 1.0/1.1: 256).
    pub reg_alloc_unit: u32,
    /// Warp allocation granularity for register accounting (CC 1.x: 2).
    pub warp_alloc_granularity: u32,
    /// Bytes of shared memory per SM.
    pub smem_per_sm: u32,
    /// Shared-memory allocation granularity in bytes (CC 1.x: 512).
    pub smem_alloc_unit: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Number of shared-memory banks (CC 1.x: 16).
    pub smem_banks: u32,
    /// Shader (SP) clock in Hz — `clock()` counts these cycles.
    pub clock_hz: f64,
    /// Theoretical global-memory bandwidth in bytes/second (for reports).
    pub mem_bandwidth: f64,
}

impl DeviceConfig {
    /// GeForce 8800 GTX (G80, compute capability 1.0) — the paper's device.
    ///
    /// 16 SMs, 8192 registers/SM, 16 KiB shared memory/SM, 768 threads/SM,
    /// 1.35 GHz shader clock, 86.4 GB/s memory bandwidth.
    pub fn g8800gtx() -> Self {
        DeviceConfig {
            name: "GeForce 8800 GTX (G80)".into(),
            num_sms: 16,
            warp_size: 32,
            half_warp: 16,
            regs_per_sm: 8192,
            reg_alloc_unit: 256,
            warp_alloc_granularity: 2,
            smem_per_sm: 16 * 1024,
            smem_alloc_unit: 512,
            max_threads_per_sm: 768,
            max_blocks_per_sm: 8,
            max_threads_per_block: 512,
            smem_banks: 16,
            clock_hz: 1.35e9,
            mem_bandwidth: 86.4e9,
        }
    }

    /// GeForce GTX 280 (GT200, compute capability 1.3) — a later device for
    /// sensitivity studies (the paper's "different GPU models" future work).
    pub fn gtx280() -> Self {
        DeviceConfig {
            name: "GeForce GTX 280 (GT200)".into(),
            num_sms: 30,
            warp_size: 32,
            half_warp: 16,
            regs_per_sm: 16384,
            reg_alloc_unit: 512,
            warp_alloc_granularity: 2,
            smem_per_sm: 16 * 1024,
            smem_alloc_unit: 512,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 8,
            max_threads_per_block: 512,
            smem_banks: 16,
            clock_hz: 1.296e9,
            mem_bandwidth: 141.7e9,
        }
    }

    /// Maximum resident warps per SM.
    pub fn max_warps_per_sm(&self) -> u32 {
        self.max_threads_per_sm / self.warp_size
    }

    /// Validate internal consistency; panics on a malformed configuration.
    pub fn validate(&self) {
        assert!(self.warp_size > 0 && self.warp_size.is_multiple_of(self.half_warp));
        assert!(self.num_sms > 0);
        assert!(self.max_threads_per_sm.is_multiple_of(self.warp_size));
        assert!(self.max_threads_per_block <= self.max_threads_per_sm);
        assert!(self.reg_alloc_unit.is_power_of_two());
        assert!(self.smem_banks.is_power_of_two());
        assert!(self.clock_hz > 0.0 && self.mem_bandwidth > 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        DeviceConfig::g8800gtx().validate();
        DeviceConfig::gtx280().validate();
    }

    #[test]
    fn g80_warp_arithmetic() {
        let d = DeviceConfig::g8800gtx();
        assert_eq!(d.max_warps_per_sm(), 24);
        assert_eq!(d.half_warp, 16);
    }

    #[test]
    #[should_panic]
    fn invalid_config_rejected() {
        let mut d = DeviceConfig::g8800gtx();
        d.max_threads_per_sm = 700; // not a multiple of warp size
        d.validate();
    }
}
