//! Translation validation for the IR passes.
//!
//! `verify_equiv` symbolically executes a kernel and its transformed
//! counterpart over a concrete launch shape and proves — per thread, per
//! store, bit for bit — that the two produce identical observable behaviour:
//! the same global/shared stores (address, width and value), in the same
//! order, with the same barrier structure. Loads of addresses the kernel did
//! not itself write become opaque *input terms*, so the proof holds for
//! **every** possible memory content, not just one test vector; arithmetic
//! over known bits constant-folds through the exact semantics of
//! [`super::interp`] (the same wrapping u32 / `f32::from_bits` rules the
//! executors use), so the symbolic run never disagrees with a dynamic one.
//!
//! Terms live in a single hash-consed [`TermArena`] shared by both kernels:
//! structural equality is pointer equality, and no float identities are
//! assumed (not even `x + 0.0`, which is wrong for `-0.0`) — which is exactly
//! why the passes this checker validates (`unroll_innermost`, `licm`,
//! `fold_addressing`) are provable: they reorder and de-duplicate
//! computations but never re-associate floats.
//!
//! Cross-**layout** equivalence (the `layout_advisor` fix-it: rebuild the
//! kernel under the advised layout) is proved the same way, with an
//! [`InputMap`] canonicalizing each load address to the logical
//! `(element, field)` it holds, so `px` of particle 7 gets the *same* input
//! term whether it was fetched from a packed 28-byte record or a `float4`.
//!
//! On a mismatch the checker emits a counterexample [`FaultSite`] — kernel,
//! block, thread and the stable instruction index of the first diverging
//! event (the same numbering `ir::pretty` prints).
//!
//! What it does not do: kernels whose control flow depends on loaded data
//! (the Barnes–Hut `While` traversal, an `If` on a loaded predicate) are
//! reported as [`VerifyResult::Unsupported`], never "proved".

use std::collections::HashMap;
use std::fmt;

use crate::fault::FaultSite;
use crate::ir::passes::{fold_addressing, licm, unroll_innermost};
use crate::ir::{AluOp, Instr, InstrIndexer, Kernel, MemSpace, Operand, SpecialReg, UnaryOp};

use super::interp;

/// A term in the normal-form expression algebra. Terms are hash-consed in a
/// [`TermArena`]; two [`TermId`]s are equal iff the terms are structurally
/// identical.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Node {
    /// A known 32-bit value.
    Const(u32),
    /// An unknown input: one word of device memory the kernel read but never
    /// wrote. The key is either the raw byte address or, under an
    /// [`InputMap`], a canonical logical key.
    Input {
        /// Address space the word was read from.
        space: MemSpace,
        /// Raw address or canonical key.
        key: u64,
    },
    /// The n-th `clock()` sample this thread took (opaque: passes must not
    /// duplicate, drop or reorder clock reads).
    Clock(u32),
    /// A binary ALU operation.
    Alu(AluOp, TermId, TermId),
    /// A fused multiply-add.
    Mad {
        /// f32 (`true`) or wrapping u32 (`false`).
        float: bool,
        /// Multiplicand, multiplier, addend.
        a: TermId,
        /// Multiplier.
        b: TermId,
        /// Addend.
        c: TermId,
    },
    /// A unary operation.
    Unary(UnaryOp, TermId),
}

/// Index into a [`TermArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TermId(u32);

/// Hash-consed term store shared by both kernels of a verification, so that
/// identical computations — however they were reached — get identical ids.
struct TermArena {
    nodes: Vec<Node>,
    dedup: HashMap<Node, TermId>,
}

impl TermArena {
    fn new() -> TermArena {
        TermArena {
            nodes: Vec::new(),
            dedup: HashMap::new(),
        }
    }

    fn intern(&mut self, n: Node) -> TermId {
        if let Some(&id) = self.dedup.get(&n) {
            return id;
        }
        let id = TermId(self.nodes.len() as u32);
        self.nodes.push(n.clone());
        self.dedup.insert(n, id);
        id
    }

    fn konst(&mut self, v: u32) -> TermId {
        self.intern(Node::Const(v))
    }

    fn as_const(&self, t: TermId) -> Option<u32> {
        match self.nodes[t.0 as usize] {
            Node::Const(v) => Some(v),
            _ => None,
        }
    }

    /// Smart constructor: folds when both sides are known, using the exact
    /// bit semantics of [`interp::alu`]. The only algebraic identities used
    /// are integer ones that hold for every bit pattern; floats get none.
    fn alu(&mut self, op: AluOp, a: TermId, b: TermId) -> TermId {
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            return self.konst(interp::alu(op, x, y));
        }
        match op {
            AluOp::IAdd | AluOp::ISub => {
                if self.as_const(b) == Some(0) {
                    return a;
                }
                if op == AluOp::IAdd && self.as_const(a) == Some(0) {
                    return b;
                }
            }
            AluOp::IMul => {
                if self.as_const(b) == Some(1) {
                    return a;
                }
                if self.as_const(a) == Some(1) {
                    return b;
                }
            }
            _ => {}
        }
        self.intern(Node::Alu(op, a, b))
    }

    fn mad(&mut self, float: bool, a: TermId, b: TermId, c: TermId) -> TermId {
        if let (Some(x), Some(y), Some(z)) = (self.as_const(a), self.as_const(b), self.as_const(c))
        {
            return self.konst(interp::mad(float, x, y, z));
        }
        if !float {
            // mad.lo.u32 with a known multiply folds to an add; with a zero
            // addend it is the bare multiply. Wrapping-exact either way.
            if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
                let prod = self.konst(x.wrapping_mul(y));
                return self.alu(AluOp::IAdd, prod, c);
            }
            if self.as_const(c) == Some(0) {
                return self.alu(AluOp::IMul, a, b);
            }
        }
        self.intern(Node::Mad { float, a, b, c })
    }

    fn unary(&mut self, op: UnaryOp, a: TermId) -> TermId {
        if let Some(x) = self.as_const(a) {
            return self.konst(interp::unary(op, x));
        }
        self.intern(Node::Unary(op, a))
    }

    /// Render a term for counterexample messages (depth-limited).
    fn render(&self, t: TermId, depth: u32) -> String {
        if depth == 0 {
            return "…".to_string();
        }
        match &self.nodes[t.0 as usize] {
            Node::Const(v) => format!("{v:#x}"),
            Node::Input { space, key } => format!("{space:?}[{key:#x}]"),
            Node::Clock(n) => format!("clock#{n}"),
            Node::Alu(op, a, b) => {
                format!(
                    "({op:?} {} {})",
                    self.render(*a, depth - 1),
                    self.render(*b, depth - 1)
                )
            }
            Node::Mad { float, a, b, c } => format!(
                "(mad{} {} {} {})",
                if *float { ".f32" } else { ".u32" },
                self.render(*a, depth - 1),
                self.render(*b, depth - 1),
                self.render(*c, depth - 1)
            ),
            Node::Unary(op, a) => format!("({op:?} {})", self.render(*a, depth - 1)),
        }
    }
}

/// Maps raw load addresses to canonical logical keys, so two kernels reading
/// the *same logical datum* through *different layouts* get the same input
/// term. Addresses not in the map fall back to their raw value.
#[derive(Debug, Clone, Default)]
pub struct InputMap {
    /// byte address of a 32-bit word → canonical key.
    pub global: HashMap<u64, u64>,
}

impl InputMap {
    /// Canonical key for one global word.
    fn key(&self, addr: u64) -> u64 {
        self.global.get(&addr).copied().unwrap_or(addr)
    }
}

/// Launch shape and parameters to verify under.
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// Blocks in the launch.
    pub grid: u32,
    /// Threads per block.
    pub block: u32,
    /// Parameter values for the *original* kernel.
    pub params: Vec<u32>,
    /// Parameter values for the transformed kernel (defaults to `params`).
    pub params_b: Option<Vec<u32>>,
    /// Canonical input naming for the original kernel's loads.
    pub input_map: Option<InputMap>,
    /// Canonical input naming for the transformed kernel's loads.
    pub input_map_b: Option<InputMap>,
    /// Per-loop iteration budget before giving up (`Unsupported`).
    pub max_steps: u64,
    /// Interval-guarded lockstep for the uniform-bound case: when
    /// `Some(r)`, a data-dependent `While` continuation predicate no longer
    /// aborts the proof — instead the check is re-run once per assumed
    /// uniform trip count `t ∈ [1, r]`, forcing every unknown continuation
    /// to "continue" for the first `t − 1` rounds and "exit" at round `t`,
    /// and recording each forced decision as an observable [`Event`] both
    /// kernels must agree on. All `r` proofs together yield
    /// [`VerifyResult::ProvedBounded`] — equivalence on every execution
    /// whose data-dependent loops run uniformly at most `r` rounds.
    pub uniform_while_rounds: Option<u32>,
}

impl VerifyConfig {
    /// Same launch, same parameters, raw addresses as input names — the
    /// configuration for verifying an IR pass (which never changes the
    /// parameter list or the data layout).
    pub fn new(grid: u32, block: u32, params: Vec<u32>) -> VerifyConfig {
        VerifyConfig {
            grid,
            block,
            params,
            params_b: None,
            input_map: None,
            input_map_b: None,
            max_steps: 4096,
            uniform_while_rounds: None,
        }
    }

    /// Enable the uniform-bound `While` guard (see
    /// [`VerifyConfig::uniform_while_rounds`]).
    pub fn with_uniform_while_rounds(mut self, rounds: u32) -> VerifyConfig {
        self.uniform_while_rounds = Some(rounds.max(1));
        self
    }
}

/// Outcome of one equivalence check.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyResult {
    /// The two kernels are observably equivalent on this launch shape, for
    /// every possible memory content.
    Proved {
        /// Threads compared.
        threads: u64,
        /// Store events matched per thread pair (summed over the launch).
        stores: u64,
        /// Barrier events matched (summed over the launch).
        syncs: u64,
    },
    /// The kernels disagree; `site` pinpoints the first diverging event.
    Mismatch {
        /// Counterexample coordinates (kernel of the *transformed* run,
        /// block, thread, instruction index of the diverging event).
        site: FaultSite,
        /// Human-readable account of the divergence.
        detail: String,
    },
    /// Equivalent under the uniform-trip-count guard: proved separately for
    /// every assumed trip count `t ∈ [1, rounds]` of the data-dependent
    /// `While` loops (see [`VerifyConfig::uniform_while_rounds`]). Weaker
    /// than [`VerifyResult::Proved`] — executions where lanes exit the loop
    /// at different rounds, or run more than `rounds` rounds, are not
    /// covered.
    ProvedBounded {
        /// The trip-count bound every assumption was checked up to.
        rounds: u32,
        /// Threads compared, summed over all assumed trip counts.
        threads: u64,
        /// Store events matched, summed over all assumed trip counts.
        stores: u64,
        /// Barrier events matched, summed over all assumed trip counts.
        syncs: u64,
    },
    /// The checker cannot decide (data-dependent control flow, address it
    /// cannot resolve, loop budget exhausted) — never counted as proved.
    Unsupported {
        /// Why.
        reason: String,
    },
}

impl VerifyResult {
    /// `true` only for [`VerifyResult::Proved`] — the unconditional proof.
    pub fn is_proved(&self) -> bool {
        matches!(self, VerifyResult::Proved { .. })
    }

    /// `true` for the guarded proof ([`VerifyResult::ProvedBounded`]).
    pub fn is_proved_bounded(&self) -> bool {
        matches!(self, VerifyResult::ProvedBounded { .. })
    }
}

impl fmt::Display for VerifyResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyResult::Proved {
                threads,
                stores,
                syncs,
            } => write!(
                f,
                "proved equivalent: {threads} threads, {stores} stores, {syncs} barriers matched"
            ),
            VerifyResult::ProvedBounded {
                rounds,
                threads,
                stores,
                syncs,
            } => write!(
                f,
                "proved equivalent for every uniform trip count <= {rounds}: \
                 {threads} threads, {stores} stores, {syncs} barriers matched"
            ),
            VerifyResult::Mismatch { site, detail } => {
                write!(f, "MISMATCH at {site}: {detail}")
            }
            VerifyResult::Unsupported { reason } => write!(f, "unsupported: {reason}"),
        }
    }
}

/// The passes the checker can validate applications of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassId {
    /// `passes::unroll_innermost` with this factor.
    Unroll(u32),
    /// `passes::licm`.
    Licm,
    /// `passes::fold_addressing`.
    Fold,
    /// `licm` then `unroll_innermost` (the advisor's recommended order).
    LicmThenUnroll(u32),
    /// `unroll_innermost` then `licm` (the reverse order).
    UnrollThenLicm(u32),
}

impl PassId {
    /// Human-readable label.
    pub fn label(&self) -> String {
        match self {
            PassId::Unroll(f) => format!("unroll x{f}"),
            PassId::Licm => "licm".to_string(),
            PassId::Fold => "fold_addressing".to_string(),
            PassId::LicmThenUnroll(f) => format!("licm ∘ unroll x{f}"),
            PassId::UnrollThenLicm(f) => format!("unroll x{f} ∘ licm"),
        }
    }

    /// Apply the pass.
    pub fn apply(&self, k: &Kernel) -> Kernel {
        match self {
            PassId::Unroll(f) => unroll_innermost(k, *f),
            PassId::Licm => licm(k),
            PassId::Fold => fold_addressing(k),
            PassId::LicmThenUnroll(f) => unroll_innermost(&licm(k), *f),
            PassId::UnrollThenLicm(f) => licm(&unroll_innermost(k, *f)),
        }
    }
}

/// Apply `pass` to `kernel` and prove the result equivalent to the original.
pub fn verify_pass(kernel: &Kernel, pass: PassId, cfg: &VerifyConfig) -> VerifyResult {
    let transformed = pass.apply(kernel);
    verify_equiv(kernel, &transformed, cfg)
}

/// Prove `a` and `b` observably equivalent under `cfg`.
///
/// Both kernels are symbolically executed block by block, all threads of a
/// block in lockstep (so shared-memory staging works), and each thread's
/// ordered trace of observable events — global/shared stores and barriers —
/// is compared. The first divergence is returned as a counterexample.
pub fn verify_equiv(a: &Kernel, b: &Kernel, cfg: &VerifyConfig) -> VerifyResult {
    if cfg.block == 0 || cfg.grid == 0 {
        return VerifyResult::Unsupported {
            reason: "empty launch".to_string(),
        };
    }
    if cfg.params.len() != a.n_params as usize {
        return VerifyResult::Unsupported {
            reason: format!(
                "kernel `{}` takes {} parameters, config supplies {}",
                a.name,
                a.n_params,
                cfg.params.len()
            ),
        };
    }
    let params_b = cfg.params_b.as_ref().unwrap_or(&cfg.params);
    if params_b.len() != b.n_params as usize {
        return VerifyResult::Unsupported {
            reason: format!(
                "kernel `{}` takes {} parameters, config supplies {}",
                b.name,
                b.n_params,
                params_b.len()
            ),
        };
    }

    match cfg.uniform_while_rounds {
        None => verify_under(a, b, params_b, cfg, None),
        Some(rounds) => {
            // One full proof per assumed uniform trip count; every one must
            // hold for the guarded claim.
            let (mut threads, mut stores, mut syncs) = (0u64, 0u64, 0u64);
            for t in 1..=rounds.max(1) {
                match verify_under(a, b, params_b, cfg, Some(t)) {
                    VerifyResult::Proved {
                        threads: th,
                        stores: st,
                        syncs: sy,
                    } => {
                        threads += th;
                        stores += st;
                        syncs += sy;
                    }
                    other => return other,
                }
            }
            VerifyResult::ProvedBounded {
                rounds: rounds.max(1),
                threads,
                stores,
                syncs,
            }
        }
    }
}

/// One equivalence proof, optionally under an assumed uniform trip count for
/// data-dependent `While` loops.
fn verify_under(
    a: &Kernel,
    b: &Kernel,
    params_b: &[u32],
    cfg: &VerifyConfig,
    assume_rounds: Option<u32>,
) -> VerifyResult {
    let empty = InputMap::default();
    let mut arena = TermArena::new();
    let mut threads = 0u64;
    let mut stores = 0u64;
    let mut syncs = 0u64;
    for block_id in 0..cfg.grid {
        let trace_a = match run_block(
            a,
            &cfg.params,
            cfg.input_map.as_ref().unwrap_or(&empty),
            block_id,
            cfg,
            assume_rounds,
            &mut arena,
        ) {
            Ok(t) => t,
            Err(e) => return e.into_result(a, block_id),
        };
        let trace_b = match run_block(
            b,
            params_b,
            cfg.input_map_b
                .as_ref()
                .or(cfg.input_map.as_ref())
                .unwrap_or(&empty),
            block_id,
            cfg,
            assume_rounds,
            &mut arena,
        ) {
            Ok(t) => t,
            Err(e) => return e.into_result(b, block_id),
        };
        for tid in 0..cfg.block as usize {
            let (ta, tb) = (&trace_a[tid], &trace_b[tid]);
            if let Some(m) = compare_traces(ta, tb, &arena) {
                return VerifyResult::Mismatch {
                    site: FaultSite {
                        kernel: Some(b.name.clone()),
                        block: Some(block_id),
                        thread: Some(tid as u32),
                        instruction: m.instruction,
                    },
                    detail: m.detail,
                };
            }
            threads += 1;
            stores += ta
                .iter()
                .filter(|e| matches!(e, Event::Store { .. }))
                .count() as u64;
            syncs += ta.iter().filter(|e| matches!(e, Event::Sync)).count() as u64;
        }
    }
    VerifyResult::Proved {
        threads,
        stores,
        syncs,
    }
}

/// One observable event in a thread's trace.
#[derive(Debug, Clone, PartialEq)]
enum Event {
    /// A barrier this thread retired.
    Sync,
    /// A store this thread issued: space, resolved byte address, the stored
    /// word terms, and the instruction index (for counterexamples).
    Store {
        space: MemSpace,
        addr: u64,
        values: Vec<TermId>,
        instr: u64,
    },
    /// A forced decision on a data-dependent `While` continuation under the
    /// uniform-bound guard: at completed round `round`, the predicate was
    /// *assumed* to be `cont`. Both kernels must consult an unknown
    /// continuation at the same trace positions with the same outcomes, or
    /// the per-assumption proofs do not transfer between them.
    Assume { round: u32, cont: bool },
}

struct TraceMismatch {
    instruction: Option<u64>,
    detail: String,
}

fn compare_traces(a: &[Event], b: &[Event], arena: &TermArena) -> Option<TraceMismatch> {
    for (i, (ea, eb)) in a.iter().zip(b.iter()).enumerate() {
        match (ea, eb) {
            (Event::Sync, Event::Sync) => {}
            (
                Event::Store {
                    space: sa,
                    addr: aa,
                    values: va,
                    instr: _,
                },
                Event::Store {
                    space: sb,
                    addr: ab,
                    values: vb,
                    instr: ib,
                },
            ) => {
                if sa != sb || aa != ab {
                    return Some(TraceMismatch {
                        instruction: Some(*ib),
                        detail: format!(
                            "event {i}: store targets differ: {sa:?}@{aa:#x} vs {sb:?}@{ab:#x}"
                        ),
                    });
                }
                if va.len() != vb.len() {
                    return Some(TraceMismatch {
                        instruction: Some(*ib),
                        detail: format!(
                            "event {i}: store widths differ: {} vs {} words at {sa:?}@{aa:#x}",
                            va.len(),
                            vb.len()
                        ),
                    });
                }
                for (w, (ta, tb)) in va.iter().zip(vb.iter()).enumerate() {
                    if ta != tb {
                        return Some(TraceMismatch {
                            instruction: Some(*ib),
                            detail: format!(
                                "event {i}: word {w} stored to {sa:?}@{aa:#x} differs: {} vs {}",
                                arena.render(*ta, 5),
                                arena.render(*tb, 5)
                            ),
                        });
                    }
                }
            }
            (
                Event::Assume {
                    round: ra,
                    cont: ca,
                },
                Event::Assume {
                    round: rb,
                    cont: cb,
                },
            ) => {
                if ra != rb || ca != cb {
                    return Some(TraceMismatch {
                        instruction: None,
                        detail: format!(
                            "event {i}: While assumptions diverge: \
                             round {ra} cont={ca} vs round {rb} cont={cb}"
                        ),
                    });
                }
            }
            (ea, eb) => {
                let describe = |e: &Event| match e {
                    Event::Sync => "syncs".to_string(),
                    Event::Store { space, addr, .. } => format!("stores to {space:?}@{addr:#x}"),
                    Event::Assume { round, cont } => {
                        format!("assumes While round {round} cont={cont}")
                    }
                };
                let instr = match eb {
                    Event::Store { instr, .. } => Some(*instr),
                    _ => None,
                };
                return Some(TraceMismatch {
                    instruction: instr,
                    detail: format!(
                        "event {i}: original thread {}, transformed {}",
                        describe(ea),
                        describe(eb)
                    ),
                });
            }
        }
    }
    if a.len() != b.len() {
        let instr = b.get(a.len()).and_then(|e| match e {
            Event::Store { instr, .. } => Some(*instr),
            Event::Sync | Event::Assume { .. } => None,
        });
        return Some(TraceMismatch {
            instruction: instr,
            detail: format!(
                "trace lengths differ: {} vs {} observable events",
                a.len(),
                b.len()
            ),
        });
    }
    None
}

/// Why a symbolic block run could not finish.
#[derive(Debug)]
struct RunStuck {
    instruction: Option<u64>,
    reason: String,
}

impl RunStuck {
    fn into_result(self, k: &Kernel, block: u32) -> VerifyResult {
        VerifyResult::Unsupported {
            reason: format!(
                "kernel `{}` block {block}{}: {}",
                k.name,
                match self.instruction {
                    Some(i) => format!(" instruction {i}"),
                    None => String::new(),
                },
                self.reason
            ),
        }
    }
}

/// Symbolic state of one block: every thread in lockstep.
struct BlockRun<'k, 'a> {
    input_map: &'k InputMap,
    block_id: u32,
    grid: u32,
    block: u32,
    max_steps: u64,
    /// `Some(t)` = uniform-bound guard: assume unknown `While` continuations
    /// run exactly `t` rounds (see [`VerifyConfig::uniform_while_rounds`]).
    assume_rounds: Option<u32>,
    arena: &'a mut TermArena,
    /// regs[thread][reg]
    regs: Vec<Vec<TermId>>,
    /// preds[thread][pred]
    preds: Vec<Vec<Option<bool>>>,
    /// Per-thread clock-sample counter.
    clocks: Vec<u32>,
    /// Shared memory words this block wrote: word address → term.
    shared: HashMap<u64, TermId>,
    /// Global words *this kernel* wrote: address → term (reads of unwritten
    /// words become canonical input terms).
    global: HashMap<u64, TermId>,
    traces: Vec<Vec<Event>>,
}

fn run_block(
    kernel: &Kernel,
    params: &[u32],
    input_map: &InputMap,
    block_id: u32,
    cfg: &VerifyConfig,
    assume_rounds: Option<u32>,
    arena: &mut TermArena,
) -> Result<Vec<Vec<Event>>, RunStuck> {
    let n_threads = cfg.block as usize;
    let n_regs = (kernel.n_regs.max(kernel.n_params)).max(kernel.max_reg_referenced() + 1) as usize;
    let zero = arena.konst(0);
    let mut regs = vec![vec![zero; n_regs]; n_threads];
    for (p, &v) in params.iter().enumerate() {
        let t = arena.konst(v);
        for r in regs.iter_mut() {
            r[p] = t;
        }
    }
    let mut run = BlockRun {
        input_map,
        block_id,
        grid: cfg.grid,
        block: cfg.block,
        max_steps: cfg.max_steps,
        assume_rounds,
        arena,
        regs,
        preds: vec![vec![None; kernel.n_preds.max(1) as usize]; n_threads],
        clocks: vec![0; n_threads],
        shared: HashMap::new(),
        global: HashMap::new(),
        traces: vec![Vec::new(); n_threads],
    };
    let mut ix = InstrIndexer::new();
    let tree = interp::index_stmts(&kernel.body, &mut ix);
    let all: Vec<usize> = (0..n_threads).collect();
    run.walk(&tree, &all)?;
    Ok(run.traces)
}

impl BlockRun<'_, '_> {
    fn operand(&mut self, t: usize, o: &Operand) -> TermId {
        match o {
            Operand::R(r) => self.regs[t][r.0 as usize],
            Operand::ImmU(v) => self.arena.konst(*v),
            Operand::ImmF(f) => self.arena.konst(f.to_bits()),
        }
    }

    /// A register operand's value must be a compile-time constant to steer
    /// control flow; report which instruction needed it otherwise.
    fn concrete(&mut self, t: usize, o: &Operand, at: Option<u64>) -> Result<u32, RunStuck> {
        let term = self.operand(t, o);
        self.arena.as_const(term).ok_or_else(|| RunStuck {
            instruction: at,
            reason: "control flow depends on a value that is not a launch constant".to_string(),
        })
    }

    fn walk(&mut self, stmts: &[interp::IStmt<'_>], active: &[usize]) -> Result<(), RunStuck> {
        use interp::IStmt;
        for s in stmts {
            match s {
                IStmt::I(idx, i) => self.exec(*idx, i, active)?,
                IStmt::Sync => {
                    // A barrier under partial activity is a defect the lint
                    // reports; for equivalence it is still an ordered event
                    // for the threads that reach it.
                    for &t in active {
                        self.traces[t].push(Event::Sync);
                    }
                }
                IStmt::If {
                    pred,
                    negate,
                    then,
                    els,
                } => {
                    let mut taken = Vec::new();
                    let mut not_taken = Vec::new();
                    for &t in active {
                        let Some(p) = self.preds[t][pred.0 as usize] else {
                            return Err(RunStuck {
                                instruction: None,
                                reason: format!(
                                    "branch predicate %p{} is not statically known",
                                    pred.0
                                ),
                            });
                        };
                        if p != *negate {
                            taken.push(t);
                        } else {
                            not_taken.push(t);
                        }
                    }
                    if !taken.is_empty() {
                        self.walk(then, &taken)?;
                    }
                    if !not_taken.is_empty() {
                        self.walk(els, &not_taken)?;
                    }
                }
                IStmt::For {
                    init,
                    var,
                    start,
                    end,
                    step,
                    body,
                    latch,
                } => {
                    if *step == 0 {
                        return Err(RunStuck {
                            instruction: Some(*init),
                            reason: "loop step is zero".to_string(),
                        });
                    }
                    // Uniform trip counts only: each active thread's bounds
                    // must be known, and iteration proceeds per-thread value
                    // (a grid-strided start is fine — the latch compare is
                    // evaluated per thread each round, in lockstep).
                    let mut iv: HashMap<usize, u32> = HashMap::new();
                    let mut ends: HashMap<usize, u32> = HashMap::new();
                    for &t in active {
                        iv.insert(t, self.concrete(t, start, Some(*init))?);
                        ends.insert(t, self.concrete(t, end, Some(*init))?);
                    }
                    let mut rounds = 0u64;
                    let mut live: Vec<usize> = active.to_vec();
                    // Bottom-tested: every thread runs the body at least once.
                    loop {
                        for &t in &live {
                            let v = self.arena.konst(iv[&t]);
                            self.regs[t][var.0 as usize] = v;
                        }
                        self.walk(body, &live)?;
                        for t in live.iter().copied() {
                            let next = iv[&t].wrapping_add(*step);
                            iv.insert(t, next);
                            let v = self.arena.konst(next);
                            self.regs[t][var.0 as usize] = v;
                        }
                        live.retain(|t| iv[t] < ends[t]);
                        rounds += 1;
                        if live.is_empty() {
                            break;
                        }
                        if rounds >= self.max_steps {
                            return Err(RunStuck {
                                instruction: Some(latch.2),
                                reason: format!(
                                    "loop exceeded the {}-iteration budget",
                                    self.max_steps
                                ),
                            });
                        }
                    }
                }
                IStmt::While {
                    pred,
                    negate,
                    body,
                    backedge,
                } => {
                    let mut live: Vec<usize> = active.to_vec();
                    let mut rounds = 0u64;
                    loop {
                        self.walk(body, &live)?;
                        rounds += 1;
                        let mut next = Vec::new();
                        for &t in &live {
                            let cont = match self.preds[t][pred.0 as usize] {
                                Some(p) => p != *negate,
                                None => {
                                    // Under the uniform-bound guard an
                                    // unknown continuation is assumed, not
                                    // fatal: continue for the first t − 1
                                    // rounds, exit at round t, and make the
                                    // decision part of the observable trace.
                                    let Some(t_rounds) = self.assume_rounds else {
                                        return Err(RunStuck {
                                            instruction: Some(*backedge),
                                            reason: format!(
                                                "While continuation predicate %p{} is data-dependent",
                                                pred.0
                                            ),
                                        });
                                    };
                                    let cont = rounds < u64::from(t_rounds);
                                    self.traces[t].push(Event::Assume {
                                        round: rounds as u32,
                                        cont,
                                    });
                                    cont
                                }
                            };
                            if cont {
                                next.push(t);
                            }
                        }
                        live = next;
                        if live.is_empty() {
                            break;
                        }
                        if rounds >= self.max_steps {
                            return Err(RunStuck {
                                instruction: Some(*backedge),
                                reason: format!(
                                    "While loop exceeded the {}-iteration budget",
                                    self.max_steps
                                ),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn exec(&mut self, idx: u64, i: &Instr, active: &[usize]) -> Result<(), RunStuck> {
        match i {
            Instr::Mov { dst, src } => {
                for &t in active {
                    let v = self.operand(t, src);
                    self.regs[t][dst.0 as usize] = v;
                }
            }
            Instr::Special { dst, sr } => {
                for &t in active {
                    let v = match sr {
                        SpecialReg::TidX => t as u32,
                        SpecialReg::CtaidX => self.block_id,
                        SpecialReg::NtidX => self.block,
                        SpecialReg::NctaidX => self.grid,
                    };
                    let term = self.arena.konst(v);
                    self.regs[t][dst.0 as usize] = term;
                }
            }
            Instr::Alu { op, dst, a, b } => {
                for &t in active {
                    let (x, y) = (self.operand(t, a), self.operand(t, b));
                    let v = self.arena.alu(*op, x, y);
                    self.regs[t][dst.0 as usize] = v;
                }
            }
            Instr::Mad {
                float,
                dst,
                a,
                b,
                c,
            } => {
                for &t in active {
                    let (x, y, z) = (self.operand(t, a), self.operand(t, b), self.operand(t, c));
                    let v = self.arena.mad(*float, x, y, z);
                    self.regs[t][dst.0 as usize] = v;
                }
            }
            Instr::Unary { op, dst, a } => {
                for &t in active {
                    let x = self.operand(t, a);
                    let v = self.arena.unary(*op, x);
                    self.regs[t][dst.0 as usize] = v;
                }
            }
            Instr::Setp { dst, cmp, a, b } => {
                for &t in active {
                    let (x, y) = (self.operand(t, a), self.operand(t, b));
                    let v = match (self.arena.as_const(x), self.arena.as_const(y)) {
                        (Some(x), Some(y)) => Some(interp::compare(*cmp, x, y)),
                        _ => None,
                    };
                    self.preds[t][dst.0 as usize] = v;
                }
            }
            Instr::Ld {
                dsts,
                space,
                base,
                offset,
            } => {
                for &t in active {
                    let addr = self.address(t, *base, *offset, idx)?;
                    for (w, d) in dsts.iter().enumerate() {
                        let wa = addr + 4 * w as u64;
                        let v = self.load_word(*space, wa);
                        self.regs[t][d.0 as usize] = v;
                    }
                }
            }
            Instr::St {
                srcs,
                space,
                base,
                offset,
            } => {
                if *space == MemSpace::Texture {
                    return Err(RunStuck {
                        instruction: Some(idx),
                        reason: "store through the read-only texture path".to_string(),
                    });
                }
                for &t in active {
                    let addr = self.address(t, *base, *offset, idx)?;
                    let mut values = Vec::with_capacity(srcs.len());
                    for (w, s) in srcs.iter().enumerate() {
                        let v = self.operand(t, s);
                        values.push(v);
                        let wa = addr + 4 * w as u64;
                        match space {
                            MemSpace::Shared => self.shared.insert(wa, v),
                            _ => self.global.insert(wa, v),
                        };
                    }
                    self.traces[t].push(Event::Store {
                        space: *space,
                        addr,
                        values,
                        instr: idx,
                    });
                }
            }
            Instr::Clock { dst } => {
                for &t in active {
                    let n = self.clocks[t];
                    self.clocks[t] += 1;
                    let v = self.arena.intern(Node::Clock(n));
                    self.regs[t][dst.0 as usize] = v;
                }
            }
        }
        Ok(())
    }

    /// Resolve a memory address; it must be concrete (addresses drive which
    /// input terms are created, so a symbolic address is undecidable).
    fn address(
        &mut self,
        t: usize,
        base: crate::ir::Reg,
        offset: u32,
        idx: u64,
    ) -> Result<u64, RunStuck> {
        let b = self.regs[t][base.0 as usize];
        match self.arena.as_const(b) {
            Some(v) => Ok(v.wrapping_add(offset) as u64),
            None => Err(RunStuck {
                instruction: Some(idx),
                reason: "memory address is not statically resolvable".to_string(),
            }),
        }
    }

    fn load_word(&mut self, space: MemSpace, addr: u64) -> TermId {
        match space {
            MemSpace::Shared => {
                if let Some(&v) = self.shared.get(&addr) {
                    return v;
                }
                self.arena.intern(Node::Input {
                    space: MemSpace::Shared,
                    key: addr,
                })
            }
            MemSpace::Global | MemSpace::Texture => {
                if let Some(&v) = self.global.get(&addr) {
                    return v;
                }
                let key = self.input_map.key(addr);
                // The texture path reads the same underlying buffers.
                self.arena.intern(Node::Input {
                    space: MemSpace::Global,
                    key,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{CmpOp, KernelBuilder, Reg, Stmt};

    /// out[i] = a[i] * s + eps²  with the ε² multiply recomputed per
    /// iteration — licm has something to hoist, unroll has a loop to unroll.
    fn sample_kernel(iters: u32) -> Kernel {
        let mut b = KernelBuilder::new("sample");
        let buf = b.param();
        let out = b.param();
        let eps = b.param();
        let i = b.global_thread_index();
        let acc = b.mov(Operand::ImmF(0.0));
        b.for_loop(Operand::ImmU(0), Operand::ImmU(iters), 1, |b, it| {
            let e2 = b.fmul(eps.into(), eps.into());
            let a = b.mad_u(it.into(), Operand::ImmU(4), buf.into());
            let v = b.ld(MemSpace::Global, a, 0, 1)[0];
            let x = b.fmad(v.into(), e2.into(), acc.into());
            b.alu_into(acc, AluOp::FAdd, acc.into(), x.into());
        });
        let oa = b.mad_u(i.into(), Operand::ImmU(4), out.into());
        b.st(MemSpace::Global, oa, 0, vec![acc.into()]);
        b.finish()
    }

    fn cfg() -> VerifyConfig {
        VerifyConfig::new(1, 32, vec![0x1000, 0x8000, 0.5f32.to_bits()])
    }

    #[test]
    fn identity_is_proved() {
        let k = sample_kernel(8);
        let r = verify_equiv(&k, &k, &cfg());
        assert!(r.is_proved(), "{r}");
    }

    #[test]
    fn all_passes_prove_on_the_sample() {
        let k = sample_kernel(8);
        for pass in [
            PassId::Licm,
            PassId::Fold,
            PassId::Unroll(4),
            PassId::Unroll(8),
            PassId::LicmThenUnroll(8),
            PassId::UnrollThenLicm(8),
        ] {
            let r = verify_pass(&k, pass, &cfg());
            assert!(r.is_proved(), "{}: {r}", pass.label());
        }
    }

    #[test]
    fn changed_store_value_is_a_mismatch_with_site() {
        let k = sample_kernel(4);
        let mut bad = k.clone();
        // Flip the final store to write ε instead of the accumulator.
        let Some(Stmt::I(Instr::St { srcs, .. })) = bad.body.last_mut() else {
            panic!("expected trailing store");
        };
        srcs[0] = Operand::R(Reg(2)); // eps param
        let r = verify_equiv(&k, &bad, &cfg());
        let VerifyResult::Mismatch { site, detail } = r else {
            panic!("expected mismatch, got {r}");
        };
        assert_eq!(site.kernel.as_deref(), Some("sample"));
        assert_eq!(site.block, Some(0));
        assert_eq!(site.thread, Some(0));
        assert!(site.instruction.is_some());
        assert!(detail.contains("differs"), "{detail}");
    }

    #[test]
    fn dropped_sync_is_a_mismatch() {
        let mut b = KernelBuilder::new("syncful");
        let out = b.param();
        let tid = b.special(SpecialReg::TidX);
        let sa = b.imul(tid.into(), Operand::ImmU(4));
        b.st(MemSpace::Shared, sa, 0, vec![tid.into()]);
        b.sync();
        let oa = b.mad_u(tid.into(), Operand::ImmU(4), out.into());
        b.st(MemSpace::Global, oa, 0, vec![tid.into()]);
        let k = b.finish();
        let mut bad = k.clone();
        bad.body.retain(|s| !matches!(s, Stmt::Sync));
        let r = verify_equiv(&k, &bad, &VerifyConfig::new(1, 32, vec![0x8000]));
        assert!(matches!(r, VerifyResult::Mismatch { .. }), "{r}");
    }

    #[test]
    fn data_dependent_branch_is_unsupported_not_proved() {
        let mut b = KernelBuilder::new("ddbranch");
        let buf = b.param();
        let out = b.param();
        let tid = b.special(SpecialReg::TidX);
        let v = b.ld(MemSpace::Global, buf, 0, 1)[0];
        let p = b.setp(CmpOp::ULt, v.into(), Operand::ImmU(10));
        b.if_then(p, |b| {
            let oa = b.mad_u(tid.into(), Operand::ImmU(4), out.into());
            b.st(MemSpace::Global, oa, 0, vec![v.into()]);
        });
        let k = b.finish();
        let r = verify_equiv(&k, &k, &VerifyConfig::new(1, 32, vec![0x1000, 0x8000]));
        assert!(matches!(r, VerifyResult::Unsupported { .. }), "{r}");
    }

    #[test]
    fn proof_is_symbolic_in_memory_contents() {
        // The sample kernel's stores depend on loaded data; a proof must not
        // depend on any particular memory content — check the input terms
        // show up in the rendered detail of a deliberate value flip.
        let k = sample_kernel(2);
        let mut arena = TermArena::new();
        let t = run_block(
            &k,
            &[0x1000, 0x8000, 0x3f000000],
            &InputMap::default(),
            0,
            &cfg(),
            None,
            &mut arena,
        )
        .expect("supported");
        let Event::Store { values, .. } = &t[0][0] else {
            panic!("store expected")
        };
        let txt = arena.render(values[0], 12);
        assert!(
            txt.contains("Global[0x1000]"),
            "store value should reference the input: {txt}"
        );
    }

    /// A uniform data-dependent walk: every thread loads the same scalar,
    /// recomputes an invariant product in the loop, and counts down — the
    /// continuation is genuinely data-dependent, but uniform across lanes.
    fn countdown_kernel() -> Kernel {
        let mut b = KernelBuilder::new("countdown");
        let buf = b.param();
        let out = b.param();
        let scale = b.param();
        let tid = b.special(SpecialReg::TidX);
        let n = b.ld(MemSpace::Global, buf, 0, 1)[0];
        let acc = b.mov(Operand::ImmF(0.0));
        b.do_while(|b| {
            let s2 = b.fmul(scale.into(), scale.into());
            b.alu_into(acc, AluOp::FAdd, acc.into(), s2.into());
            b.alu_into(n, AluOp::ISub, n.into(), Operand::ImmU(1));
            b.setp(CmpOp::UNe, n.into(), Operand::ImmU(0))
        });
        let oa = b.mad_u(tid.into(), Operand::ImmU(4), out.into());
        b.st(MemSpace::Global, oa, 0, vec![acc.into()]);
        b.finish()
    }

    #[test]
    fn uniform_while_guard_turns_unsupported_into_bounded_proof() {
        let k = countdown_kernel();
        let base = VerifyConfig::new(1, 32, vec![0x1000, 0x8000, 0.5f32.to_bits()]);
        let r = verify_equiv(&k, &k, &base);
        assert!(matches!(r, VerifyResult::Unsupported { .. }), "{r}");
        let guarded = base.with_uniform_while_rounds(5);
        let r = verify_equiv(&k, &k, &guarded);
        assert!(r.is_proved_bounded(), "{r}");
        assert!(!r.is_proved(), "bounded proof must not claim the full one");
        let VerifyResult::ProvedBounded { rounds, stores, .. } = r else {
            unreachable!()
        };
        assert_eq!(rounds, 5);
        // One output store per thread per assumed trip count: 32 × 5.
        assert_eq!(stores, 32 * 5);
    }

    #[test]
    fn licm_proves_under_the_uniform_while_guard() {
        // licm hoists the invariant `scale²` out of the data-dependent loop;
        // the guarded lockstep must still match the traces round for round.
        let k = countdown_kernel();
        let cfg = VerifyConfig::new(1, 32, vec![0x1000, 0x8000, 0.5f32.to_bits()])
            .with_uniform_while_rounds(4);
        let r = verify_pass(&k, PassId::Licm, &cfg);
        assert!(r.is_proved_bounded(), "{}: {r}", PassId::Licm.label());
    }

    #[test]
    fn guarded_proof_still_catches_mismatches() {
        let k = countdown_kernel();
        let mut bad = k.clone();
        let Some(Stmt::I(Instr::St { srcs, .. })) = bad.body.last_mut() else {
            panic!("expected trailing store");
        };
        srcs[0] = Operand::R(Reg(2)); // store `scale` instead of the accumulator
        let cfg = VerifyConfig::new(1, 32, vec![0x1000, 0x8000, 0.5f32.to_bits()])
            .with_uniform_while_rounds(3);
        let r = verify_equiv(&k, &bad, &cfg);
        assert!(matches!(r, VerifyResult::Mismatch { .. }), "{r}");
    }

    #[test]
    fn guard_does_not_mask_divergent_while_exits() {
        // A *non-uniform* continuation (per-lane countdown from tid) resolves
        // concretely — known predicates keep steering, no assumption fires,
        // and the result is the plain guarded re-proof of a decidable loop.
        let mut b = KernelBuilder::new("divexit");
        let out = b.param();
        let tid = b.special(SpecialReg::TidX);
        let n = b.alu(AluOp::IAdd, tid.into(), Operand::ImmU(1));
        b.do_while(|b| {
            b.alu_into(n, AluOp::ISub, n.into(), Operand::ImmU(1));
            b.setp(CmpOp::UNe, n.into(), Operand::ImmU(0))
        });
        let oa = b.mad_u(tid.into(), Operand::ImmU(4), out.into());
        b.st(MemSpace::Global, oa, 0, vec![n.into()]);
        let k = b.finish();
        let cfg = VerifyConfig::new(1, 8, vec![0x8000]).with_uniform_while_rounds(2);
        let r = verify_equiv(&k, &k, &cfg);
        assert!(r.is_proved_bounded(), "{r}");
    }

    #[test]
    fn input_map_canonicalization_merges_layouts() {
        // Two trivially different "layouts" of one scalar: kernel A reads
        // addr 0x1000, kernel B reads 0x2000; the maps name both word 7.
        let build = |base: u32, name: &str| {
            let mut b = KernelBuilder::new(name);
            let buf = b.param();
            let out = b.param();
            let tid = b.special(SpecialReg::TidX);
            let v = b.ld(MemSpace::Global, buf, 0, 1)[0];
            let oa = b.mad_u(tid.into(), Operand::ImmU(4), out.into());
            b.st(MemSpace::Global, oa, 0, vec![v.into()]);
            (b.finish(), vec![base, 0x8000])
        };
        let (ka, pa) = build(0x1000, "la");
        let (kb, pb) = build(0x2000, "lb");
        let mut cfg = VerifyConfig::new(1, 32, pa);
        cfg.params_b = Some(pb);
        let mut ma = InputMap::default();
        ma.global.insert(0x1000, 7);
        let mut mb = InputMap::default();
        mb.global.insert(0x2000, 7);
        cfg.input_map = Some(ma);
        cfg.input_map_b = Some(mb);
        let r = verify_equiv(&ka, &kb, &cfg);
        assert!(r.is_proved(), "{r}");
        // Without the maps the same pair must NOT prove.
        let mut cfg2 = VerifyConfig::new(1, 32, vec![0x1000, 0x8000]);
        cfg2.params_b = Some(vec![0x2000, 0x8000]);
        let r2 = verify_equiv(&ka, &kb, &cfg2);
        assert!(matches!(r2, VerifyResult::Mismatch { .. }), "{r2}");
    }
}
