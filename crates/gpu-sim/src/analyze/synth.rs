//! Layout + schedule synthesis: turn the analyzers into an optimizer.
//!
//! PRs 2/3/6 built three independent capabilities: *detect* bad layouts
//! (lints over per-lane address streams), *price* rewrites (the Eq. 3 cycle
//! model), and *prove* rewrites (translation validation). This module closes
//! the loop the paper closes by hand in Sec. III–IV:
//!
//! 1. **Summarize** — [`buffer_summaries`] distills the interpreter's
//!    per-site [`AccessSummary`]s into per-buffer facts: which kernel
//!    parameter is the buffer base ([`AccessSummary::buffer_param`]), the
//!    record stride per lane, and the hot/cold field partition (words the
//!    kernel reads vs. words it hauls across the bus and never touches —
//!    the paper's 28-byte record wastes 12 of every 32 bus bytes).
//! 2. **Enumerate** — [`synthesize`] builds the candidate space: layout
//!    plans (pow2-aligned AoS, full SoA scatter, SoAoaS tilings at 8- and
//!    16-byte tile widths, always hot/cold split because only read words
//!    are mapped) as [`LayoutRewrite`] specs, crossed with pass schedules
//!    (`licm`, `unroll`, and both compositions at every legal factor).
//! 3. **Price** — every candidate kernel is materialized through
//!    [`rewrite_layout`] + [`PassId::apply`] and priced with
//!    [`cost::estimate`] under one launch shape; candidates are ranked by
//!    predicted cycles (ties to fewer registers — the paper's 17→16 point).
//! 4. **Prove** — top candidates are checked with
//!    [`verify::verify_equiv`] under an element-indexed [`InputMap`] (the
//!    layout step) and [`verify::verify_pass`] (the schedule step). **A
//!    candidate that does not come back `Proved`/`ProvedBounded` is
//!    discarded, never suggested** — the prove-then-suggest invariant.
//!
//! The end-to-end expectation (`gpu_kernels::synthset`): starting from the
//! naive 28-byte packed force kernel, synthesis must rediscover the paper's
//! answer — a single 16-byte SoAoaS tile of the four hot words plus
//! licm-before-unroll — with a machine-checked certificate attached.

use std::fmt;

use crate::driver::DriverModel;
use crate::ir::layout::{rewrite_layout, BufferMap, FieldDest, LayoutRewrite};
use crate::ir::{count, Kernel, MemSpace, Operand, Stmt};

use super::cost::{self, CostError};
use super::verify::{verify_equiv, InputMap, PassId, VerifyConfig, VerifyResult};
use super::{analyze_kernel, AnalysisConfig, AnalysisReport};

/// What the synthesizer needs to know about a launch to optimize a kernel.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Driver model candidates are priced under.
    pub driver: DriverModel,
    /// Blocks in the pricing launch.
    pub grid: u32,
    /// Threads per block (the kernel's native block size — tile loops bake
    /// it into immediate bounds, so it is not a free variable here).
    pub block: u32,
    /// Parameter values for the pricing launch. Buffer-base parameters
    /// must be nonzero, distinct, 16-byte aligned, and far enough apart
    /// that footprints do not overlap — the same convention as
    /// `gpu_kernels::lintset`.
    pub params: Vec<u32>,
    /// Index of the parameter holding the element count, when the kernel
    /// has one; synthesis re-derives it per launch shape (`grid·block` for
    /// pricing, `block` for the verification launch).
    pub n_param: Option<usize>,
    /// How many proven suggestions to emit at most. Candidates beyond the
    /// ones proven are still listed (and ranked) in
    /// [`SynthReport::candidates`], just not suggested.
    pub max_suggestions: usize,
    /// Minimum predicted speedup for a suggestion (e.g. `1.02` = 2%);
    /// keeps noise-level wins from churning code and makes synthesis
    /// idempotent — re-running on a winner finds nothing above threshold.
    pub min_gain: f64,
    /// Per-loop iteration budget for the verifier.
    pub verify_max_steps: u64,
    /// Blocks in the verification launch (2 exercises `ctaid`).
    pub verify_grid: u32,
}

impl SynthConfig {
    /// Defaults: 3 suggestions, 2% minimum gain, 2-block verify launch.
    pub fn new(driver: DriverModel, grid: u32, block: u32, params: Vec<u32>) -> SynthConfig {
        SynthConfig {
            driver,
            grid,
            block,
            params,
            n_param: None,
            max_suggestions: 3,
            min_gain: 1.02,
            verify_max_steps: 1 << 16,
            verify_grid: 2,
        }
    }

    /// Declare which parameter carries the element count.
    pub fn with_n_param(mut self, idx: usize) -> SynthConfig {
        self.n_param = Some(idx);
        self
    }

    /// Cap the number of proven suggestions.
    pub fn with_max_suggestions(mut self, n: usize) -> SynthConfig {
        self.max_suggestions = n;
        self
    }
}

/// Per-buffer access summary: everything layout synthesis needs to know
/// about how one global buffer is read.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferSummary {
    /// Kernel parameter holding the buffer base.
    pub param: u16,
    /// The base value under the analyzed launch.
    pub base: u64,
    /// Record stride in bytes (the constant byte stride between adjacent
    /// lanes at every load site of this buffer).
    pub stride: u32,
    /// Byte offsets of record words the kernel reads (sorted) — the hot set.
    pub hot_words: Vec<u32>,
    /// Record words never read — hauled across the bus and dropped.
    pub cold_words: Vec<u32>,
    /// Load sites contributing to this summary.
    pub sites: usize,
    /// Predicted transactions over all sites of this buffer.
    pub transactions: u64,
    /// Half-warp issues over all sites of this buffer.
    pub half_warp_accesses: u64,
    /// Some site also *stores* through this base — not rewritable.
    pub written: bool,
}

/// Extract per-buffer summaries from an analysis report.
///
/// A buffer qualifies only when every global load site attributed to its
/// parameter is exact, has a bounded footprint, and agrees on a single
/// positive lane stride (the record stride). Buffers that fail any of this
/// are dropped — and with them any rewrite candidate that would have
/// touched them; the synthesizer never guesses.
pub fn buffer_summaries(report: &AnalysisReport, params: &[u32]) -> Vec<BufferSummary> {
    let mut out: Vec<BufferSummary> = Vec::new();
    let mut poisoned: Vec<u16> = Vec::new();
    for acc in &report.accesses {
        if acc.space != MemSpace::Global {
            continue;
        }
        let Some(p) = acc.buffer_param else { continue };
        if !acc.is_load {
            if let Some(s) = out.iter_mut().find(|s| s.param == p) {
                s.written = true;
            } else {
                out.push(BufferSummary {
                    param: p,
                    base: params.get(p as usize).copied().unwrap_or(0) as u64,
                    stride: 0,
                    hot_words: Vec::new(),
                    cold_words: Vec::new(),
                    sites: 0,
                    transactions: 0,
                    half_warp_accesses: 0,
                    written: true,
                });
            }
            continue;
        }
        let stride = match acc.lane_stride {
            Some(s) if s > 0 && s % 4 == 0 => s as u32,
            _ => {
                poisoned.push(p);
                continue;
            }
        };
        let (Some((lo, _hi)), true) = (acc.addr_range, acc.exact) else {
            poisoned.push(p);
            continue;
        };
        let base = params.get(p as usize).copied().unwrap_or(0) as u64;
        if lo < base {
            poisoned.push(p);
            continue;
        }
        let rel = ((lo - base) % stride as u64) as u32;
        let entry = match out.iter_mut().find(|s| s.param == p) {
            Some(e) => e,
            None => {
                out.push(BufferSummary {
                    param: p,
                    base,
                    stride,
                    hot_words: Vec::new(),
                    cold_words: Vec::new(),
                    sites: 0,
                    transactions: 0,
                    half_warp_accesses: 0,
                    written: false,
                });
                out.last_mut().expect("just pushed")
            }
        };
        if entry.stride == 0 {
            entry.stride = stride;
        }
        if entry.stride != stride || rel + acc.width_bytes > stride {
            poisoned.push(p);
            continue;
        }
        for w in 0..acc.width_bytes / 4 {
            let off = rel + 4 * w;
            if !entry.hot_words.contains(&off) {
                entry.hot_words.push(off);
            }
        }
        entry.sites += 1;
        entry.transactions += acc.transactions;
        entry.half_warp_accesses += acc.half_warp_accesses;
    }
    out.retain(|s| !poisoned.contains(&s.param));
    for s in &mut out {
        s.hot_words.sort_unstable();
        s.cold_words = (0..s.stride / 4)
            .map(|w| 4 * w)
            .filter(|o| !s.hot_words.contains(o))
            .collect();
    }
    out.sort_by_key(|s| s.param);
    out
}

/// One priced candidate (also the rows of `results/table_synth.csv`).
#[derive(Debug, Clone)]
pub struct CandidateEval {
    /// `layout + schedule` label.
    pub label: String,
    /// Predicted cycles under the pricing launch (lower is better).
    pub predicted_cycles: f64,
    /// Baseline cycles / candidate cycles.
    pub predicted_speedup: f64,
    /// Registers per thread (the ranking tie-break).
    pub regs: u16,
}

/// The translation-validation evidence attached to a suggestion.
#[derive(Debug, Clone)]
pub struct SynthCertificate {
    /// Proof that the layout rewrite preserves every observable store
    /// (`None` when the candidate keeps the layout).
    pub layout: Option<VerifyResult>,
    /// Proof that the pass schedule preserves them (`None` when the
    /// candidate keeps the schedule).
    pub schedule: Option<VerifyResult>,
}

impl SynthCertificate {
    /// `true` iff every component came back `Proved` or `ProvedBounded`.
    pub fn is_proved(&self) -> bool {
        let ok =
            |r: &Option<VerifyResult>| r.iter().all(|v| v.is_proved() || v.is_proved_bounded());
        (self.layout.is_some() || self.schedule.is_some()) && ok(&self.layout) && ok(&self.schedule)
    }

    /// Short human-readable form (`layout: proved; schedule: proved`).
    pub fn summary(&self) -> String {
        let word = |r: &Option<VerifyResult>| match r {
            None => "unchanged".to_string(),
            Some(VerifyResult::Proved { .. }) => "proved".to_string(),
            Some(VerifyResult::ProvedBounded { rounds, .. }) => {
                format!("proved (bounded, {rounds} rounds)")
            }
            Some(VerifyResult::Mismatch { detail, .. }) => format!("MISMATCH: {detail}"),
            Some(VerifyResult::Unsupported { reason }) => format!("unsupported: {reason}"),
        };
        format!(
            "layout: {}; schedule: {}",
            word(&self.layout),
            word(&self.schedule)
        )
    }
}

/// A proven, strictly-better rewrite the synthesizer stands behind.
#[derive(Debug, Clone)]
pub struct Suggestion {
    /// `layout + schedule` label.
    pub label: String,
    /// The layout change (`None` = keep the current layout).
    pub rewrite: Option<LayoutRewrite>,
    /// The pass schedule (`None` = keep the current schedule).
    pub schedule: Option<PassId>,
    /// The fully transformed kernel (layout rewrite, then schedule).
    pub kernel: Kernel,
    /// Predicted cycles under the pricing launch.
    pub predicted_cycles: f64,
    /// Predicted speedup over the unmodified kernel.
    pub predicted_speedup: f64,
    /// Registers per thread of the transformed kernel.
    pub regs: u16,
    /// The machine-checked evidence. [`SynthCertificate::is_proved`] is
    /// `true` by construction for every emitted suggestion.
    pub certificate: SynthCertificate,
}

/// Everything one synthesis run learned.
#[derive(Debug, Clone)]
pub struct SynthReport {
    /// Kernel analyzed.
    pub kernel: String,
    /// Driver model priced under.
    pub driver: DriverModel,
    /// Threads per block of the pricing launch.
    pub block: u32,
    /// Predicted cycles of the unmodified kernel.
    pub baseline_cycles: f64,
    /// Registers per thread of the unmodified kernel.
    pub baseline_regs: u16,
    /// The per-buffer access summaries synthesis worked from.
    pub summaries: Vec<BufferSummary>,
    /// Every priced candidate, ranked best-first.
    pub candidates: Vec<CandidateEval>,
    /// Proven suggestions, ranked best-first (subset of `candidates`).
    pub suggestions: Vec<Suggestion>,
    /// Candidates that were enumerated but could not be materialized or
    /// proved, with reasons — nothing is dropped silently.
    pub skipped: Vec<String>,
}

impl SynthReport {
    /// The winning suggestion, if any candidate survived pricing + proof.
    pub fn winner(&self) -> Option<&Suggestion> {
        self.suggestions.first()
    }
}

/// Why synthesis could not run at all (individual candidates failing is
/// reported in [`SynthReport::skipped`] instead).
#[derive(Debug, Clone, PartialEq)]
pub enum SynthError {
    /// The baseline kernel itself cannot be priced (not exact / not
    /// schedulable) — there is no yardstick to rank candidates against.
    Unpriceable(String),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::Unpriceable(s) => write!(f, "baseline kernel cannot be priced: {s}"),
        }
    }
}

impl std::error::Error for SynthError {}

/// Parameter vector for a rewritten kernel: the new buffer bases, then the
/// original non-buffer parameters in order.
pub fn rewritten_params(rw: &LayoutRewrite, params: &[u32], new_bases: &[u32]) -> Vec<u32> {
    assert_eq!(new_bases.len(), rw.new_strides.len());
    let mut out = new_bases.to_vec();
    out.extend_from_slice(&params[rw.old_buffers as usize..]);
    out
}

/// Canonical logical key of `(old buffer param, element, old byte offset)` —
/// the layout-independent name both sides of an equivalence proof use for
/// the same datum.
fn canon_key(param: u16, elem: u64, offset: u32) -> u64 {
    ((param as u64 + 1) << 40) | (elem << 12) | offset as u64
}

/// Non-overlapping, 16-byte-aligned fake bases for the rewritten kernel's
/// buffers, placed well away from the originals.
fn fake_bases(n: usize, start: u32) -> Vec<u32> {
    (0..n as u32).map(|j| start + j * 0x1_0000).collect()
}

fn next_pow2(x: u32) -> u32 {
    x.max(1).next_power_of_two()
}

// ---------------------------------------------------------------------------
// Candidate enumeration
// ---------------------------------------------------------------------------

struct LayoutCand {
    name: &'static str,
    rw: LayoutRewrite,
}

/// Enumerate layout plans over the rewritable buffers. Only hot words are
/// mapped, so every plan implicitly hot/cold-splits; cold words simply do
/// not exist in the new layout the kernel sees.
fn layout_candidates(sums: &[BufferSummary], old_buffers: u16) -> Vec<LayoutCand> {
    let mut out: Vec<LayoutCand> = Vec::new();
    // Buffer params the kernel never reads get an empty map: they are
    // dropped from the new layout outright (whole-buffer cold split).
    let full_maps = |read_maps: Vec<BufferMap>| -> Vec<BufferMap> {
        (0..old_buffers)
            .map(|p| {
                read_maps
                    .iter()
                    .find(|m| m.param == p)
                    .cloned()
                    .unwrap_or(BufferMap {
                        param: p,
                        stride: 4,
                        words: Vec::new(),
                    })
            })
            .collect()
    };
    let mut push = |name: &'static str, new_strides: Vec<u32>, maps: Vec<BufferMap>| {
        let rw = LayoutRewrite {
            tag: name.to_string(),
            old_buffers,
            new_strides,
            maps,
        };
        if rw.is_identity() {
            return;
        }
        if out
            .iter()
            .any(|c| c.rw.new_strides == rw.new_strides && c.rw.maps == rw.maps)
        {
            return;
        }
        out.push(LayoutCand { name, rw });
    };

    // AoS, pow2-aligned: keep each record together, pad the stride to a
    // power of two so records never straddle segment boundaries (the
    // paper's 28→32-byte step).
    push(
        "aos-pow2",
        sums.iter().map(|s| next_pow2(s.stride)).collect(),
        full_maps(
            sums.iter()
                .enumerate()
                .map(|(j, s)| BufferMap {
                    param: s.param,
                    stride: s.stride,
                    words: s
                        .hot_words
                        .iter()
                        .map(|&o| {
                            (
                                o,
                                FieldDest {
                                    buffer: j,
                                    offset: o,
                                },
                            )
                        })
                        .collect(),
                })
                .collect(),
        ),
    );

    // SoA: one scalar array per hot word.
    let all_hot: Vec<(u16, u32)> = sums
        .iter()
        .flat_map(|s| s.hot_words.iter().map(|&o| (s.param, o)))
        .collect();
    push(
        "soa",
        vec![4; all_hot.len()],
        full_maps(
            sums.iter()
                .map(|s| BufferMap {
                    param: s.param,
                    stride: s.stride,
                    words: s
                        .hot_words
                        .iter()
                        .map(|&o| {
                            let j = all_hot
                                .iter()
                                .position(|&(p, w)| p == s.param && w == o)
                                .expect("hot word came from all_hot");
                            (
                                o,
                                FieldDest {
                                    buffer: j,
                                    offset: 0,
                                },
                            )
                        })
                        .collect(),
                })
                .collect(),
        ),
    );

    // SoAoaS at tile widths 8 and 16: pack the hot words (across all old
    // buffers) contiguously into fixed-width tiles; a short tail tile is
    // padded only to the next power of two.
    for (name, tile_words) in [("soaoas-8", 2usize), ("soaoas-16", 4usize)] {
        let n_tiles = all_hot.len().div_ceil(tile_words);
        let mut strides = Vec::with_capacity(n_tiles);
        for t in 0..n_tiles {
            let words_here = (all_hot.len() - t * tile_words).min(tile_words);
            strides.push(next_pow2(4 * words_here as u32));
        }
        let dest_of = |p: u16, o: u32| {
            let idx = all_hot
                .iter()
                .position(|&(q, w)| q == p && w == o)
                .expect("hot word came from all_hot");
            FieldDest {
                buffer: idx / tile_words,
                offset: 4 * (idx % tile_words) as u32,
            }
        };
        push(
            name,
            strides,
            full_maps(
                sums.iter()
                    .map(|s| BufferMap {
                        param: s.param,
                        stride: s.stride,
                        words: s
                            .hot_words
                            .iter()
                            .map(|&o| (o, dest_of(s.param, o)))
                            .collect(),
                    })
                    .collect(),
            ),
        );
    }
    out
}

/// Mirror of `unroll_innermost`'s target selection: the trip count of the
/// loop it would unroll, or `None` when unrolling would be refused
/// (non-immediate bounds, induction variable redefined, no loop at all).
fn unrollable_trips(stmts: &[Stmt]) -> Option<u64> {
    fn contains_loop(s: &Stmt) -> bool {
        match s {
            Stmt::For { .. } | Stmt::While { .. } => true,
            Stmt::If { then, els, .. } => {
                then.iter().any(contains_loop) || els.iter().any(contains_loop)
            }
            _ => false,
        }
    }
    fn defines(stmts: &[Stmt], var: crate::ir::Reg) -> bool {
        stmts.iter().any(|s| match s {
            Stmt::I(i) => i.defs().contains(&var),
            Stmt::For { body, var: v, .. } => *v == var || defines(body, var),
            Stmt::While { body, .. } => defines(body, var),
            Stmt::If { then, els, .. } => defines(then, var) || defines(els, var),
            Stmt::Sync => false,
        })
    }
    // Recurse-first, exactly like `unroll_in`.
    for s in stmts {
        match s {
            Stmt::For { body, .. }
                if (body.iter().any(|b| matches!(b, Stmt::For { .. }))
                    || body
                        .iter()
                        .any(|b| matches!(b, Stmt::If { .. }) && contains_loop(b))) =>
            {
                if let Some(t) = unrollable_trips(body) {
                    return Some(t);
                }
            }
            Stmt::If { then, els, .. }
                if (then.iter().any(contains_loop) || els.iter().any(contains_loop)) =>
            {
                if let Some(t) = unrollable_trips(then).or_else(|| unrollable_trips(els)) {
                    return Some(t);
                }
            }
            _ => {}
        }
    }
    for s in stmts {
        if let Stmt::For {
            var,
            start,
            end,
            step,
            body,
        } = s
        {
            if body.iter().any(contains_loop) {
                continue;
            }
            let (Operand::ImmU(s0), Operand::ImmU(e0)) = (start, end) else {
                return None;
            };
            if defines(body, *var) {
                return None;
            }
            return count::trip_count(*s0, *e0, *step).ok();
        }
    }
    None
}

/// Pass schedules worth trying on `k`: nothing, `licm`, and — when the
/// innermost loop is statically unrollable — `unroll`, `licm∘unroll`, and
/// `unroll∘licm` at factor 4 and at full trip count. Licm is listed before
/// unroll-then-licm at equal cost, so ties resolve to the paper's order.
fn schedule_candidates(k: &Kernel) -> Vec<Option<PassId>> {
    let mut out: Vec<Option<PassId>> = vec![None, Some(PassId::Licm)];
    if let Some(trips) = unrollable_trips(&k.body) {
        if (2..=1024).contains(&trips) {
            let mut factors = Vec::new();
            if trips % 4 == 0 && trips > 4 {
                factors.push(4u32);
            }
            factors.push(trips as u32);
            factors.dedup();
            for f in factors {
                out.push(Some(PassId::LicmThenUnroll(f)));
                out.push(Some(PassId::Unroll(f)));
                out.push(Some(PassId::UnrollThenLicm(f)));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Synthesis
// ---------------------------------------------------------------------------

/// Launch params with the element count re-derived for a given shape.
fn shaped_params(cfg: &SynthConfig, params: &[u32], n: u32) -> Vec<u32> {
    let mut p = params.to_vec();
    if let Some(i) = cfg.n_param {
        if i < p.len() {
            p[i] = n;
        }
    }
    p
}

fn price(kernel: &Kernel, cfg: &SynthConfig, params: Vec<u32>) -> Result<(f64, u16), CostError> {
    let acfg = AnalysisConfig::new(cfg.grid, cfg.block, params).with_driver(cfg.driver);
    let c = cost::estimate(kernel, &acfg)?;
    Ok((c.total_cycles(), cost::regs_per_thread(kernel)))
}

/// Build the element-indexed input maps proving `orig ≡ rewritten`: every
/// hot word of every old buffer gets the same canonical key on both sides.
fn layout_input_maps(
    rw: &LayoutRewrite,
    sums: &[BufferSummary],
    params_a: &[u32],
    params_b: &[u32],
    n_elems: u64,
) -> (InputMap, InputMap) {
    let mut a = InputMap::default();
    let mut b = InputMap::default();
    for m in &rw.maps {
        if m.words.is_empty() {
            continue; // dropped (never-read) buffer
        }
        let s = sums
            .iter()
            .find(|s| s.param == m.param)
            .expect("every mapped buffer has a summary");
        let base_a = params_a[m.param as usize] as u64;
        for &(old_off, dest) in &m.words {
            let base_b = params_b[dest.buffer] as u64;
            let new_stride = rw.new_strides[dest.buffer] as u64;
            for e in 0..n_elems {
                let key = canon_key(m.param, e, old_off);
                a.global
                    .insert(base_a + e * s.stride as u64 + old_off as u64, key);
                b.global
                    .insert(base_b + e * new_stride + dest.offset as u64, key);
            }
        }
    }
    (a, b)
}

/// Run the whole pipeline: summarize, enumerate, price, rank, prove.
///
/// Every suggestion in the returned report carries a certificate with
/// [`SynthCertificate::is_proved`] — candidates whose proof fails land in
/// [`SynthReport::skipped`] with the verifier's reason.
pub fn synthesize(kernel: &Kernel, cfg: &SynthConfig) -> Result<SynthReport, SynthError> {
    let vn = cfg.grid * cfg.block;
    let base_params = shaped_params(cfg, &cfg.params, vn);
    let acfg =
        AnalysisConfig::new(cfg.grid, cfg.block, base_params.clone()).with_driver(cfg.driver);
    let report = analyze_kernel(kernel, &acfg);
    let (baseline_cycles, baseline_regs) = price(kernel, cfg, base_params.clone())
        .map_err(|e| SynthError::Unpriceable(format!("{e:?}")))?;

    let summaries = buffer_summaries(&report, &base_params);

    // Layout rewriting covers the leading buffer parameters `0..old_buffers`
    // where `old_buffers` spans every cleanly-read buffer; buffer params in
    // that range the kernel never reads are dropped from the new layout
    // (whole-buffer cold split). A written buffer inside the range, or an
    // element-count param inside it, keeps the layout fixed and synthesis
    // searches schedules only.
    let rewritable: Vec<BufferSummary> = summaries
        .iter()
        .filter(|s| !s.written && !s.hot_words.is_empty() && s.stride > 0)
        .cloned()
        .collect();
    let old_buffers = rewritable.iter().map(|s| s.param + 1).max().unwrap_or(0);
    let range_ok = old_buffers >= 1
        && summaries
            .iter()
            .all(|s| !(s.written && s.param < old_buffers))
        && cfg.n_param.is_none_or(|i| i >= old_buffers as usize);
    let rewritable = if range_ok { rewritable } else { Vec::new() };

    let mut skipped: Vec<String> = Vec::new();
    let layouts = if rewritable.is_empty() {
        Vec::new()
    } else {
        layout_candidates(&rewritable, old_buffers)
    };

    // Materialize and price the whole candidate space.
    struct Priced {
        label: String,
        layout: Option<usize>,
        schedule: Option<PassId>,
        kernel: Kernel,
        cycles: f64,
        regs: u16,
    }
    let mut priced: Vec<Priced> = Vec::new();
    let mut layout_kernels: Vec<Option<(Kernel, Vec<u32>)>> = Vec::new();

    // The identity layout.
    let mut bases: Vec<(Option<usize>, Kernel, Vec<u32>)> =
        vec![(None, kernel.clone(), base_params.clone())];
    for (li, cand) in layouts.iter().enumerate() {
        match rewrite_layout(kernel, &cand.rw) {
            Ok(k) => {
                let nb = fake_bases(cand.rw.new_strides.len(), 0x4000_0000);
                let params = rewritten_params(&cand.rw, &base_params, &nb);
                layout_kernels.push(Some((k.clone(), params.clone())));
                bases.push((Some(li), k, params));
            }
            Err(e) => {
                skipped.push(format!("{}: rewrite refused: {e}", cand.name));
                layout_kernels.push(None);
            }
        }
    }

    for (layout, k_l, params_l) in &bases {
        let lname = layout.map_or("keep-layout", |li| layouts[li].name);
        for sched in schedule_candidates(k_l) {
            let k_s = match &sched {
                None => k_l.clone(),
                Some(p) => p.apply(k_l),
            };
            let sname = sched
                .as_ref()
                .map_or("keep-schedule".to_string(), |p| p.label());
            let label = format!("{lname} + {sname}");
            match price(&k_s, cfg, params_l.clone()) {
                Ok((cycles, regs)) => priced.push(Priced {
                    label,
                    layout: *layout,
                    schedule: sched,
                    kernel: k_s,
                    cycles,
                    regs,
                }),
                Err(e) => skipped.push(format!("{label}: unpriceable: {e:?}")),
            }
        }
    }

    priced.sort_by(|x, y| {
        x.cycles
            .total_cmp(&y.cycles)
            .then(x.regs.cmp(&y.regs))
            .then(x.label.cmp(&y.label))
    });

    let candidates: Vec<CandidateEval> = priced
        .iter()
        .map(|p| CandidateEval {
            label: p.label.clone(),
            predicted_cycles: p.cycles,
            predicted_speedup: baseline_cycles / p.cycles,
            regs: p.regs,
        })
        .collect();

    // Prove the ranked winners, best first, until enough survive.
    let vblock = cfg.block;
    let vgrid = cfg.verify_grid.max(1);
    let n_elems = (vgrid * vblock) as u64;
    let vparams_a = shaped_params(cfg, &cfg.params, vblock);
    let mut suggestions: Vec<Suggestion> = Vec::new();
    for p in &priced {
        if suggestions.len() >= cfg.max_suggestions {
            break;
        }
        if p.layout.is_none() && p.schedule.is_none() {
            continue; // the kernel itself
        }
        if baseline_cycles / p.cycles < cfg.min_gain {
            break; // ranked: nothing further clears the bar either
        }
        let mut cert = SynthCertificate {
            layout: None,
            schedule: None,
        };
        let (k_l, vparams_b) = match p.layout {
            None => (kernel.clone(), vparams_a.clone()),
            Some(li) => {
                let cand = &layouts[li];
                let Some((k_l, _)) = &layout_kernels[li] else {
                    continue;
                };
                let nb = fake_bases(cand.rw.new_strides.len(), 0x4000_0000);
                let vparams_b = rewritten_params(&cand.rw, &vparams_a, &nb);
                let (map_a, map_b) =
                    layout_input_maps(&cand.rw, &rewritable, &vparams_a, &vparams_b, n_elems);
                let mut vcfg = VerifyConfig::new(vgrid, vblock, vparams_a.clone());
                vcfg.params_b = Some(vparams_b.clone());
                vcfg.input_map = Some(map_a);
                vcfg.input_map_b = Some(map_b);
                vcfg.max_steps = cfg.verify_max_steps;
                let r = verify_equiv(kernel, k_l, &vcfg);
                if !(r.is_proved() || r.is_proved_bounded()) {
                    skipped.push(format!("{}: layout proof failed: {r}", p.label));
                    continue;
                }
                cert.layout = Some(r);
                (k_l.clone(), vparams_b)
            }
        };
        if let Some(pass) = &p.schedule {
            let mut vcfg = VerifyConfig::new(vgrid, vblock, vparams_b.clone());
            vcfg.max_steps = cfg.verify_max_steps;
            let r = verify_equiv(&k_l, &pass.apply(&k_l), &vcfg);
            if !(r.is_proved() || r.is_proved_bounded()) {
                skipped.push(format!("{}: schedule proof failed: {r}", p.label));
                continue;
            }
            cert.schedule = Some(r);
        }
        debug_assert!(cert.is_proved());
        suggestions.push(Suggestion {
            label: p.label.clone(),
            rewrite: p.layout.map(|li| layouts[li].rw.clone()),
            schedule: p.schedule,
            kernel: p.kernel.clone(),
            predicted_cycles: p.cycles,
            predicted_speedup: baseline_cycles / p.cycles,
            regs: p.regs,
            certificate: cert,
        });
    }

    Ok(SynthReport {
        kernel: kernel.name.clone(),
        driver: cfg.driver,
        block: cfg.block,
        baseline_cycles,
        baseline_regs,
        summaries,
        candidates,
        suggestions,
        skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canon_keys_are_injective_per_buffer_and_word() {
        let mut seen = std::collections::HashSet::new();
        for p in 0..3u16 {
            for e in 0..64u64 {
                for off in (0..32u32).step_by(4) {
                    assert!(seen.insert(canon_key(p, e, off)));
                }
            }
        }
    }

    #[test]
    fn layout_candidates_cover_the_paper_ladder() {
        let sums = vec![BufferSummary {
            param: 0,
            base: 0x1_0000,
            stride: 28,
            hot_words: vec![0, 4, 8, 24],
            cold_words: vec![12, 16, 20],
            sites: 2,
            transactions: 100,
            half_warp_accesses: 10,
            written: false,
        }];
        let cands = layout_candidates(&sums, 1);
        let names: Vec<&str> = cands.iter().map(|c| c.name).collect();
        assert!(names.contains(&"aos-pow2"));
        assert!(names.contains(&"soa"));
        assert!(names.contains(&"soaoas-8"));
        assert!(names.contains(&"soaoas-16"));
        // The 16-byte tiling of 4 hot words is a single float4 record.
        let soaoas = cands.iter().find(|c| c.name == "soaoas-16").unwrap();
        assert_eq!(soaoas.rw.new_strides, vec![16]);
        assert_eq!(soaoas.rw.bytes_per_element(), 16);
    }

    #[test]
    fn identity_layouts_are_not_candidates() {
        // A buffer already in SoAoaS-16 form: tiling it again is identity.
        let sums = vec![BufferSummary {
            param: 0,
            base: 0x1_0000,
            stride: 16,
            hot_words: vec![0, 4, 8, 12],
            cold_words: vec![],
            sites: 2,
            transactions: 4,
            half_warp_accesses: 4,
            written: false,
        }];
        let cands = layout_candidates(&sums, 1);
        assert!(cands.iter().all(|c| c.name != "soaoas-16"));
        assert!(cands.iter().all(|c| c.name != "aos-pow2"));
    }
}
