//! The static cycle model: predicted kernel cycles from purely static facts.
//!
//! Eq. 3 of the paper ranks optimisations by instruction budgets alone; this
//! module extends that to a whole-kernel cycle estimate by combining the four
//! static sources the workspace already computes:
//!
//! * the per-thread **instruction mix** ([`count::instruction_mix`]) priced
//!   by issue cost per unit ([`TimingParams`]: ALU/SFU/memory/sync issue),
//! * the **memory pipe**: the same per-site transaction counts the lint's
//!   symbolic coalescer derives ([`AnalysisReport::accesses`]), priced by
//!   [`TimingParams::transaction_busy`] — the paper's Sec. III bus model,
//! * **shared-memory serialization**: extra conflict passes from the static
//!   bank-conflict degree,
//! * **exposed latency**: one `mem_latency` charge per dependent load round,
//!   divided by the warps available to hide it ([`occupancy`]) — the paper's
//!   Sec. V point that occupancy exists to hide memory latency.
//!
//! The estimate is a *ranking* model, not a simulator: both components are
//! monotone in what the optimisations change (fewer instructions, fewer
//! transactions, more warps), so orderings — the AoS→SoA→AoaS→SoAoaS ladder,
//! the unroll/LICM gains — are preserved. `bench --bin table_verify`
//! cross-validates exactly that against the dynamic engine, per driver.

use crate::driver::DriverModel;
use crate::ir::count::{self, CountError, InstrMix};
use crate::ir::regalloc::register_demand;
use crate::ir::{Kernel, MemSpace};
use crate::timing::TimingParams;

use super::{analyze_kernel, AnalysisConfig, AnalysisReport};

/// A static cycle estimate and the ledger it was assembled from.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelCost {
    /// Kernel name.
    pub kernel: String,
    /// Driver model priced under.
    pub driver: DriverModel,
    /// Per-thread dynamic instruction mix.
    pub mix: InstrMix,
    /// Issue cycles: every warp instruction priced at its unit's issue cost.
    pub issue_cycles: f64,
    /// Memory-pipe busy cycles from predicted transactions.
    pub memory_cycles: f64,
    /// Extra shared-memory serialization passes.
    pub smem_conflict_cycles: f64,
    /// Exposed global-load latency after occupancy-based hiding.
    pub exposed_latency_cycles: f64,
    /// Warps resident per SM (the latency-hiding divisor).
    pub active_warps: u32,
    /// Blocks concurrently resident per SM (occupancy, not total work).
    pub blocks_per_sm: u32,
}

impl KernelCost {
    /// Total predicted cycles for the launch (per SM, busiest-resource sum).
    pub fn total_cycles(&self) -> f64 {
        self.issue_cycles
            + self.memory_cycles
            + self.smem_conflict_cycles
            + self.exposed_latency_cycles
    }
}

/// Why a cost estimate is unavailable.
#[derive(Debug, Clone, PartialEq)]
pub enum CostError {
    /// The instruction count is not static ([`count::CountError`]).
    Count(CountError),
    /// The launch shape cannot be scheduled or analyzed.
    Unanalyzable(String),
}

impl std::fmt::Display for CostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CostError::Count(e) => write!(f, "no static instruction count: {e}"),
            CostError::Unanalyzable(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CostError {}

impl From<CountError> for CostError {
    fn from(e: CountError) -> CostError {
        CostError::Count(e)
    }
}

/// Estimate the cycles one launch of `kernel` takes under `cfg`, reusing a
/// precomputed lint report (so `kernel-lint --cost` prices exactly the facts
/// it just printed).
pub fn estimate_from_report(
    kernel: &Kernel,
    cfg: &AnalysisConfig,
    report: &AnalysisReport,
) -> Result<KernelCost, CostError> {
    let mix = count::instruction_mix(kernel, &cfg.params)?;
    if !report.exact {
        return Err(CostError::Unanalyzable(
            "addresses are not fully static; transaction counts are a lower bound".to_string(),
        ));
    }
    let tp = TimingParams::for_driver(cfg.driver);

    // --- Issue: every warp retires the per-thread mix (lockstep warps).
    let warps_per_block = cfg.block.div_ceil(32) as f64;
    let occ = report.occupancy.as_ref().ok_or_else(|| {
        CostError::Unanalyzable("launch is not schedulable; no occupancy".to_string())
    })?;
    // Residency (how many blocks share an SM) only affects latency hiding;
    // total issue work per SM is set by how many blocks the busiest SM must
    // retire over the whole launch, resident or queued.
    let blocks_per_sm = occ.active_blocks.max(1);
    let num_sms = cfg.device.num_sms.max(1);
    let sm_blocks = cfg.grid.div_ceil(num_sms).max(1) as f64;
    let per_warp_issue = mix.fp as f64 * tp.issue_alu as f64
        + mix.int as f64 * tp.issue_alu as f64
        + mix.control as f64 * tp.issue_alu as f64
        + mix.sfu as f64 * tp.issue_sfu as f64
        + mix.loads as f64 * tp.issue_mem as f64
        + mix.stores as f64 * tp.issue_mem as f64;
    let issue_cycles = per_warp_issue * warps_per_block * sm_blocks;

    // --- Memory pipe: the symbolic coalescer's transactions, priced by the
    // driver's per-transaction busy time. `report.accesses` covers the whole
    // launch; scale to one SM's share.
    let launch_share = 1.0 / num_sms as f64;
    let mut memory_cycles = 0.0;
    let mut smem_conflict_cycles = 0.0;
    let mut load_rounds = 0u64;
    for site in &report.accesses {
        match site.space {
            MemSpace::Global | MemSpace::Texture => {
                let per_txn = tp.transaction_busy(site.width_bytes.max(32)) as f64;
                memory_cycles += site.transactions as f64 * per_txn * launch_share;
                if site.is_load {
                    load_rounds += 1;
                }
            }
            MemSpace::Shared => {
                // Extra serialized passes per half-warp issue beyond the
                // per-word issues a vector access pays anyway.
                let extra = site.bank_degree.saturating_sub(site.width_bytes / 4) as f64;
                smem_conflict_cycles +=
                    extra * site.half_warp_accesses as f64 * tp.issue_smem as f64 * launch_share;
            }
        }
    }

    // --- Exposed latency: each *dependent* load round stalls the warp for
    // the full trip unless other warps cover it. With `w` resident warps and
    // `max_outstanding_loads` in flight per warp, hiding scales with both.
    let active_warps = occ.active_warps.max(1);
    let hiding = (active_warps as f64) * tp.max_outstanding_loads.max(1) as f64;
    let exposed_per_round = tp.mem_latency as f64 / hiding;
    let exposed_latency_cycles =
        load_rounds as f64 * exposed_per_round * warps_per_block * sm_blocks;

    Ok(KernelCost {
        kernel: kernel.name.clone(),
        driver: cfg.driver,
        mix,
        issue_cycles,
        memory_cycles,
        smem_conflict_cycles,
        exposed_latency_cycles,
        active_warps,
        blocks_per_sm,
    })
}

/// Analyze and estimate in one call.
pub fn estimate(kernel: &Kernel, cfg: &AnalysisConfig) -> Result<KernelCost, CostError> {
    let report = analyze_kernel(kernel, cfg);
    estimate_from_report(kernel, cfg, &report)
}

/// A `[best, worst]` cycle estimate for kernels the exact model refuses —
/// data-dependent loops priced under the trip-count interval the analyzer
/// walked ([`AnalysisConfig::with_trip_budget`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CostBounds {
    /// The optimistic ledger: best-case instruction mix, `transactions_lo`,
    /// conflict-free shared accesses at the unknown sites.
    pub best: KernelCost,
    /// The pessimistic ledger: worst-case mix, `transactions_hi`, full
    /// 16-way serialization at unknown shared sites.
    pub worst: KernelCost,
}

impl CostBounds {
    /// The predicted cycle interval `[best, worst]`.
    pub fn cycle_range(&self) -> (f64, f64) {
        (self.best.total_cycles(), self.worst.total_cycles())
    }

    /// `true` when the interval is degenerate — the kernel was statically
    /// exact and both ledgers priced the same facts.
    pub fn is_tight(&self) -> bool {
        self.cycle_range().0 == self.cycle_range().1
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Bound {
    Best,
    Worst,
}

/// Price one end of the interval. Identical skeleton to
/// [`estimate_from_report`], with per-site facts swapped for their interval
/// endpoints: `transactions_lo`/`transactions_hi` on the memory pipe, and —
/// at shared sites whose addresses never resolved — conflict-free (best) vs
/// fully serialized 16-way (worst) bank behaviour over the worst-case issue
/// count.
fn price_bound(
    kernel: &Kernel,
    cfg: &AnalysisConfig,
    report: &AnalysisReport,
    mix: InstrMix,
    bound: Bound,
) -> Result<KernelCost, CostError> {
    let tp = TimingParams::for_driver(cfg.driver);
    let warps_per_block = cfg.block.div_ceil(32) as f64;
    let occ = report.occupancy.as_ref().ok_or_else(|| {
        CostError::Unanalyzable("launch is not schedulable; no occupancy".to_string())
    })?;
    let blocks_per_sm = occ.active_blocks.max(1);
    let num_sms = cfg.device.num_sms.max(1);
    let sm_blocks = cfg.grid.div_ceil(num_sms).max(1) as f64;
    let per_warp_issue = mix.fp as f64 * tp.issue_alu as f64
        + mix.int as f64 * tp.issue_alu as f64
        + mix.control as f64 * tp.issue_alu as f64
        + mix.sfu as f64 * tp.issue_sfu as f64
        + mix.loads as f64 * tp.issue_mem as f64
        + mix.stores as f64 * tp.issue_mem as f64;
    let issue_cycles = per_warp_issue * warps_per_block * sm_blocks;

    let launch_share = 1.0 / num_sms as f64;
    let mut memory_cycles = 0.0;
    let mut smem_conflict_cycles = 0.0;
    let mut load_rounds = 0u64;
    for site in &report.accesses {
        match site.space {
            MemSpace::Global | MemSpace::Texture => {
                let txns = match bound {
                    Bound::Best => site.transactions_lo,
                    Bound::Worst => site.transactions_hi,
                };
                let per_txn = tp.transaction_busy(site.width_bytes.max(32)) as f64;
                memory_cycles += txns as f64 * per_txn * launch_share;
                if site.is_load {
                    load_rounds += 1;
                }
            }
            MemSpace::Shared => {
                let (degree, half) = if site.exact {
                    (site.bank_degree, site.half_warp_accesses)
                } else {
                    match bound {
                        Bound::Best => (site.width_bytes / 4, 0),
                        Bound::Worst => (16, site.half_warp_accesses_hi),
                    }
                };
                let extra = degree.saturating_sub(site.width_bytes / 4) as f64;
                smem_conflict_cycles += extra * half as f64 * tp.issue_smem as f64 * launch_share;
            }
        }
    }

    let active_warps = occ.active_warps.max(1);
    let hiding = (active_warps as f64) * tp.max_outstanding_loads.max(1) as f64;
    let exposed_per_round = tp.mem_latency as f64 / hiding;
    let exposed_latency_cycles =
        load_rounds as f64 * exposed_per_round * warps_per_block * sm_blocks;

    Ok(KernelCost {
        kernel: kernel.name.clone(),
        driver: cfg.driver,
        mix,
        issue_cycles,
        memory_cycles,
        smem_conflict_cycles,
        exposed_latency_cycles,
        active_warps,
        blocks_per_sm,
    })
}

/// Interval cycle estimate from a precomputed report. The exact model
/// ([`estimate_from_report`]) is untouched: for a statically exact kernel
/// this returns a degenerate interval equal to its answer; for a kernel with
/// data-dependent loops — where the exact model refuses with
/// [`CostError::Count`] — it prices both endpoints of the trip-count
/// interval instead.
pub fn estimate_bounds_from_report(
    kernel: &Kernel,
    cfg: &AnalysisConfig,
    report: &AnalysisReport,
) -> Result<CostBounds, CostError> {
    let (mix_lo, mix_hi) = count::instruction_mix_bounds(kernel, &cfg.params, cfg.trip_budget)?;
    Ok(CostBounds {
        best: price_bound(kernel, cfg, report, mix_lo, Bound::Best)?,
        worst: price_bound(kernel, cfg, report, mix_hi, Bound::Worst)?,
    })
}

/// Analyze and bound in one call.
pub fn estimate_bounds(kernel: &Kernel, cfg: &AnalysisConfig) -> Result<CostBounds, CostError> {
    let report = analyze_kernel(kernel, cfg);
    estimate_bounds_from_report(kernel, cfg, &report)
}

/// Eq. 3 from cycle estimates: predicted speedup of `after` over `before`.
pub fn predicted_speedup(before: &KernelCost, after: &KernelCost) -> Result<f64, CountError> {
    count::eq3_speedup(before.total_cycles(), after.total_cycles())
}

/// A register-demand convenience the cost tables report alongside cycles.
pub fn regs_per_thread(kernel: &Kernel) -> u16 {
    register_demand(kernel).regs_per_thread
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{KernelBuilder, Operand};

    /// A strided scalar copy at lane stride `stride` bytes.
    fn copy_kernel(stride: u32) -> Kernel {
        let mut b = KernelBuilder::new(format!("copy{stride}"));
        let src = b.param();
        let dst = b.param();
        let i = b.global_thread_index();
        let a = b.mad_u(i.into(), Operand::ImmU(stride), src.into());
        let v = b.ld(MemSpace::Global, a, 0, 1)[0];
        let oa = b.mad_u(i.into(), Operand::ImmU(4), dst.into());
        b.st(MemSpace::Global, oa, 0, vec![v.into()]);
        b.finish()
    }

    #[test]
    fn uncoalesced_reads_cost_more_cycles() {
        let cfg = AnalysisConfig::new(2, 64, vec![0x1000, 0x80000]);
        let coalesced = estimate(&copy_kernel(4), &cfg).unwrap();
        let strided = estimate(&copy_kernel(28), &cfg).unwrap();
        assert!(
            strided.total_cycles() > coalesced.total_cycles(),
            "28B stride {} should out-cost 4B stride {}",
            strided.total_cycles(),
            coalesced.total_cycles()
        );
        assert!(strided.memory_cycles > coalesced.memory_cycles);
    }

    #[test]
    fn fewer_instructions_cost_fewer_issue_cycles() {
        let mut b = KernelBuilder::new("busy");
        let dst = b.param();
        let i = b.global_thread_index();
        let mut acc = b.mov(Operand::ImmF(1.0));
        for _ in 0..32 {
            acc = b.fmul(acc.into(), acc.into());
        }
        let oa = b.mad_u(i.into(), Operand::ImmU(4), dst.into());
        b.st(MemSpace::Global, oa, 0, vec![acc.into()]);
        let busy = b.finish();
        let cfg = AnalysisConfig::new(1, 64, vec![0x80000]);
        let lean = estimate(
            &copy_kernel(4),
            &AnalysisConfig::new(1, 64, vec![0x1000, 0x80000]),
        )
        .unwrap();
        let fat = estimate(&busy, &cfg).unwrap();
        assert!(fat.issue_cycles > lean.issue_cycles);
    }

    #[test]
    fn bounds_collapse_to_exact_estimate_on_affine_kernels() {
        let cfg = AnalysisConfig::new(2, 64, vec![0x1000, 0x80000]);
        let k = copy_kernel(4);
        let exact = estimate(&k, &cfg).unwrap();
        let bounds = estimate_bounds(&k, &cfg).unwrap();
        assert!(bounds.is_tight());
        assert_eq!(bounds.best.total_cycles(), exact.total_cycles());
        assert_eq!(bounds.worst.mix, exact.mix);
    }

    #[test]
    fn data_dependent_loops_get_an_interval_where_exact_refuses() {
        use crate::ir::{AluOp, CmpOp};
        let mut b = KernelBuilder::new("walk");
        let buf = b.param();
        let i = b.global_thread_index();
        let a = b.mad_u(i.into(), Operand::ImmU(4), buf.into());
        let x = b.ld(MemSpace::Global, a, 0, 1)[0];
        b.do_while(|b| {
            b.alu_into(x, AluOp::ISub, x.into(), Operand::ImmU(1));
            b.setp(CmpOp::UNe, x.into(), Operand::ImmU(0))
        });
        b.st(MemSpace::Global, a, 0, vec![x.into()]);
        let k = b.finish();
        let cfg = AnalysisConfig::new(1, 32, vec![0x1000]).with_trip_budget(64);
        assert!(matches!(estimate(&k, &cfg), Err(CostError::Count(_))));
        let bounds = estimate_bounds(&k, &cfg).unwrap();
        let (lo, hi) = bounds.cycle_range();
        assert!(
            lo > 0.0 && lo < hi,
            "expected widening interval, got [{lo}, {hi}]"
        );
        assert!(bounds.worst.issue_cycles > bounds.best.issue_cycles);
    }

    #[test]
    fn data_dependent_kernels_error_gracefully() {
        let mut b = KernelBuilder::new("dd");
        let buf = b.param();
        let n = b.ld(MemSpace::Global, buf, 0, 1)[0];
        b.for_loop(Operand::ImmU(0), n.into(), 1, |b, _| {
            b.mov(Operand::ImmF(0.0));
        });
        let k = b.finish();
        let err = estimate(&k, &AnalysisConfig::new(1, 32, vec![0x1000])).unwrap_err();
        assert!(matches!(err, CostError::Count(_)), "{err}");
    }
}
