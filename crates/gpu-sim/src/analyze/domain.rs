//! The interval abstract domain behind the analyzer's non-affine fragment.
//!
//! Per-lane register values in [`super::interp`] are drawn from a three-level
//! lattice:
//!
//! ```text
//!                Top                (nothing known)
//!                 |
//!          Interval(lo, hi)         (value in [lo, hi], inclusive)
//!                 |
//!             Exact(bits)           (value known bit-exactly)
//! ```
//!
//! `Exact` is the affine fragment of PR 2: values derived purely from launch
//! constants, computed with the executor's own bit-level arithmetic
//! ([`super::interp::alu`] and friends). `Interval` and `Top` extend the
//! domain to bounded data-dependent loops and branches.
//!
//! Two invariants keep the affine results bit-unchanged:
//!
//! * **`Exact` never degrades silently**: a transfer function returns `Exact`
//!   iff *every* input is `Exact`, in which case it calls the exact scalar
//!   semantics — the same code path the PR 2 analyzer used.
//! * **`Interval(p, p)` is never collapsed to `Exact(p)`**: interval-derived
//!   values stay intervals, so they can never leak into the exact transaction
//!   prediction (`predicted_transactions`), only into the `[best, worst]`
//!   bounds.
//!
//! Soundness contract (property-tested in `tests/analyze_proptests.rs`): if
//! the concrete value of an operand lies within its abstract value, then the
//! concrete result of any operation lies within the abstract result. Integer
//! transfer functions go through `u64` intermediates and return `Top` on any
//! possible `u32` wrap, so wrapping executor semantics are over-approximated
//! rather than mis-modelled. Float operations are `Top` unless every input is
//! exact (float bit patterns are not order-embeddable over `u32` intervals).

use crate::ir::{AluOp, CmpOp, UnaryOp};

use super::interp;

/// One lane's abstract value: exact bits, a `u32` interval, or unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AbsVal {
    /// Bit-exact value (the affine fragment).
    Exact(u32),
    /// Value lies in `[lo, hi]`, inclusive. `lo <= hi` always holds.
    Interval(u32, u32),
    /// Nothing known.
    Top,
}

impl AbsVal {
    /// The exact bits, when the value is in the affine fragment.
    pub(crate) fn as_exact(self) -> Option<u32> {
        match self {
            AbsVal::Exact(v) => Some(v),
            _ => None,
        }
    }

    /// Inclusive bounds; `None` for `Top`.
    pub(crate) fn bounds(self) -> Option<(u32, u32)> {
        match self {
            AbsVal::Exact(v) => Some((v, v)),
            AbsVal::Interval(lo, hi) => Some((lo, hi)),
            AbsVal::Top => None,
        }
    }

    /// Bounds with `Top` widened to the full `u32` range.
    fn wide_bounds(self) -> (u32, u32) {
        self.bounds().unwrap_or((0, u32::MAX))
    }

    /// Does the concrete value `v` lie within this abstract value? The
    /// soundness oracle for the transfer-function proptests below.
    #[cfg(test)]
    pub(crate) fn contains(self, v: u32) -> bool {
        let (lo, hi) = self.wide_bounds();
        lo <= v && v <= hi
    }

    /// Make an interval, normalizing a reversed pair. Never yields `Exact`.
    pub(crate) fn interval(lo: u32, hi: u32) -> AbsVal {
        AbsVal::Interval(lo.min(hi), lo.max(hi))
    }
}

/// Least upper bound. `Exact(v) ⊔ Exact(v)` stays `Exact` (the affine
/// fragment is closed under joining equal values); everything else that is
/// bounded becomes the enclosing interval.
pub(crate) fn join(a: AbsVal, b: AbsVal) -> AbsVal {
    if let (AbsVal::Exact(x), AbsVal::Exact(y)) = (a, b) {
        if x == y {
            return AbsVal::Exact(x);
        }
    }
    match (a.bounds(), b.bounds()) {
        (Some((al, ah)), Some((bl, bh))) => AbsVal::Interval(al.min(bl), ah.max(bh)),
        _ => AbsVal::Top,
    }
}

/// Widening: if `new` is contained in `old` the state is stable and `old` is
/// kept; any growth jumps straight to `Top`. The lattice then has height 2
/// per register, which bounds the fixpoint iteration (the "widening to
/// bounds" of trip counts happens separately, via the loop budget that caps
/// the trip-count interval — see `interp::run_for_abstract`).
pub(crate) fn widen(old: AbsVal, new: AbsVal) -> AbsVal {
    if old == new {
        return old;
    }
    match (old.bounds(), new.bounds()) {
        (Some((ol, oh)), Some((nl, nh))) if ol <= nl && nh <= oh => old,
        _ => AbsVal::Top,
    }
}

/// Abstract transfer for [`AluOp`]. All-exact inputs route through the exact
/// scalar semantics; otherwise integer ops compute interval bounds in `u64`
/// (any possible wrap ⇒ `Top`) and float ops are `Top`.
pub(crate) fn alu_abs(op: AluOp, a: AbsVal, b: AbsVal) -> AbsVal {
    if let (Some(x), Some(y)) = (a.as_exact(), b.as_exact()) {
        return AbsVal::Exact(interp::alu(op, x, y));
    }
    match op {
        AluOp::IAdd => match (a.bounds(), b.bounds()) {
            (Some((al, ah)), Some((bl, bh))) => {
                let hi = ah as u64 + bh as u64;
                if hi <= u32::MAX as u64 {
                    AbsVal::Interval(al + bl, hi as u32)
                } else {
                    AbsVal::Top
                }
            }
            _ => AbsVal::Top,
        },
        AluOp::ISub => match (a.bounds(), b.bounds()) {
            // Monotone decreasing in b: no wrap iff even the smallest
            // minuend covers the largest subtrahend.
            (Some((al, ah)), Some((bl, bh))) if al >= bh => AbsVal::Interval(al - bh, ah - bl),
            _ => AbsVal::Top,
        },
        AluOp::IMul => match (a.bounds(), b.bounds()) {
            (Some((al, ah)), Some((bl, bh))) => {
                let hi = ah as u64 * bh as u64;
                if hi <= u32::MAX as u64 {
                    AbsVal::Interval((al as u64 * bl as u64) as u32, hi as u32)
                } else {
                    AbsVal::Top
                }
            }
            _ => AbsVal::Top,
        },
        AluOp::IShl => match (a.bounds(), b.as_exact()) {
            // Only an exact shift amount keeps the result monotone.
            (Some((al, ah)), Some(s)) if s < 32 => {
                let hi = (ah as u64) << s;
                if hi <= u32::MAX as u64 {
                    AbsVal::Interval(al << s, hi as u32)
                } else {
                    AbsVal::Top
                }
            }
            _ => AbsVal::Top,
        },
        // x & y <= min(x, y) for unsigned; a one-sided bound survives Top.
        AluOp::IAnd => {
            let (_, ah) = a.wide_bounds();
            let (_, bh) = b.wide_bounds();
            AbsVal::Interval(0, ah.min(bh))
        }
        AluOp::IMin => {
            let (al, ah) = a.wide_bounds();
            let (bl, bh) = b.wide_bounds();
            AbsVal::Interval(al.min(bl), ah.min(bh))
        }
        AluOp::FAdd | AluOp::FSub | AluOp::FMul | AluOp::FMin | AluOp::FMax => AbsVal::Top,
    }
}

/// Abstract transfer for `mad`: exact when all inputs are, interval bounds
/// for the unsigned integer form, `Top` for the float form otherwise.
pub(crate) fn mad_abs(float: bool, a: AbsVal, b: AbsVal, c: AbsVal) -> AbsVal {
    if let (Some(x), Some(y), Some(z)) = (a.as_exact(), b.as_exact(), c.as_exact()) {
        return AbsVal::Exact(interp::mad(float, x, y, z));
    }
    if float {
        return AbsVal::Top;
    }
    match (a.bounds(), b.bounds(), c.bounds()) {
        (Some((al, ah)), Some((bl, bh)), Some((cl, ch))) => {
            let hi = ah as u64 * bh as u64 + ch as u64;
            if hi <= u32::MAX as u64 {
                AbsVal::Interval((al as u64 * bl as u64 + cl as u64) as u32, hi as u32)
            } else {
                AbsVal::Top
            }
        }
        _ => AbsVal::Top,
    }
}

/// Abstract transfer for unary ops: exact in, exact out; anything else is
/// `Top` (every unary op crosses the int/float boundary).
pub(crate) fn unary_abs(op: UnaryOp, a: AbsVal) -> AbsVal {
    match a.as_exact() {
        Some(x) => AbsVal::Exact(interp::unary(op, x)),
        None => AbsVal::Top,
    }
}

/// Abstract predicate compare: `Some` only when the outcome is provable for
/// every concretization. All-exact inputs use the exact semantics; interval
/// inputs decide unsigned compares by bound separation; float compares need
/// exact bits.
pub(crate) fn compare_abs(op: CmpOp, a: AbsVal, b: AbsVal) -> Option<bool> {
    if let (Some(x), Some(y)) = (a.as_exact(), b.as_exact()) {
        return Some(interp::compare(op, x, y));
    }
    let (al, ah) = a.wide_bounds();
    let (bl, bh) = b.wide_bounds();
    match op {
        CmpOp::ULt => {
            if ah < bl {
                Some(true)
            } else if al >= bh {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::UGe => {
            if al >= bh {
                Some(true)
            } else if ah < bl {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::UEq => {
            if ah < bl || bh < al {
                Some(false)
            } else {
                None // equal singletons are the exact-exact case above
            }
        }
        CmpOp::UNe => {
            if ah < bl || bh < al {
                Some(true)
            } else {
                None
            }
        }
        CmpOp::FLt => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_ops_match_scalar_semantics_bitwise() {
        for (x, y) in [(3u32, 5u32), (u32::MAX, 1), (0, 0), (1 << 31, 1 << 31)] {
            for op in [
                AluOp::IAdd,
                AluOp::ISub,
                AluOp::IMul,
                AluOp::IAnd,
                AluOp::IMin,
                AluOp::FAdd,
                AluOp::FMul,
            ] {
                assert_eq!(
                    alu_abs(op, AbsVal::Exact(x), AbsVal::Exact(y)),
                    AbsVal::Exact(interp::alu(op, x, y)),
                );
            }
        }
    }

    #[test]
    fn singleton_interval_is_not_collapsed_to_exact() {
        let r = alu_abs(AluOp::IAdd, AbsVal::Interval(7, 7), AbsVal::Interval(1, 1));
        assert_eq!(r, AbsVal::Interval(8, 8), "interval-ness must be sticky");
    }

    #[test]
    fn add_wraps_to_top_at_the_boundary() {
        let near = AbsVal::Interval(u32::MAX - 1, u32::MAX);
        assert_eq!(alu_abs(AluOp::IAdd, near, AbsVal::Exact(1)), AbsVal::Top);
        assert_eq!(
            alu_abs(
                AluOp::IAdd,
                AbsVal::Interval(0, u32::MAX - 1),
                AbsVal::Interval(1, 1)
            ),
            AbsVal::Interval(1, u32::MAX)
        );
    }

    #[test]
    fn sub_underflow_is_top() {
        assert_eq!(
            alu_abs(AluOp::ISub, AbsVal::Interval(0, 5), AbsVal::Interval(1, 1)),
            AbsVal::Top
        );
        assert_eq!(
            alu_abs(AluOp::ISub, AbsVal::Interval(5, 9), AbsVal::Interval(1, 2)),
            AbsVal::Interval(3, 8)
        );
    }

    #[test]
    fn and_min_survive_top() {
        assert_eq!(
            alu_abs(AluOp::IAnd, AbsVal::Top, AbsVal::Interval(0, 31)),
            AbsVal::Interval(0, 31)
        );
        assert_eq!(
            alu_abs(AluOp::IMin, AbsVal::Top, AbsVal::Interval(2, 31)),
            AbsVal::Interval(0, 31)
        );
    }

    #[test]
    fn float_ops_on_intervals_are_top() {
        assert_eq!(
            alu_abs(AluOp::FAdd, AbsVal::Interval(0, 1), AbsVal::Exact(0)),
            AbsVal::Top
        );
        assert_eq!(
            mad_abs(true, AbsVal::Top, AbsVal::Exact(0), AbsVal::Exact(0)),
            AbsVal::Top
        );
        assert_eq!(
            unary_abs(UnaryOp::FRsqrt, AbsVal::Interval(1, 2)),
            AbsVal::Top
        );
    }

    #[test]
    fn compare_decides_by_separation() {
        let lo = AbsVal::Interval(0, 4);
        let hi = AbsVal::Interval(5, 9);
        assert_eq!(compare_abs(CmpOp::ULt, lo, hi), Some(true));
        assert_eq!(compare_abs(CmpOp::ULt, hi, lo), Some(false));
        assert_eq!(compare_abs(CmpOp::UGe, hi, lo), Some(true));
        assert_eq!(compare_abs(CmpOp::UNe, lo, hi), Some(true));
        assert_eq!(compare_abs(CmpOp::UEq, lo, hi), Some(false));
        // Overlap: undecided.
        let mid = AbsVal::Interval(3, 6);
        assert_eq!(compare_abs(CmpOp::ULt, lo, mid), None);
        assert_eq!(compare_abs(CmpOp::UNe, mid, AbsVal::Exact(4)), None);
        // Top is non-negative: `x >= 0` is decidable even for Top.
        assert_eq!(
            compare_abs(CmpOp::UGe, AbsVal::Top, AbsVal::Exact(0)),
            Some(true)
        );
        assert_eq!(
            compare_abs(CmpOp::ULt, AbsVal::Top, AbsVal::Exact(0)),
            Some(false)
        );
    }

    #[test]
    fn join_and_widen_laws() {
        let a = AbsVal::Interval(2, 5);
        let b = AbsVal::Interval(4, 9);
        assert_eq!(join(a, b), AbsVal::Interval(2, 9));
        assert_eq!(join(AbsVal::Exact(3), AbsVal::Exact(3)), AbsVal::Exact(3));
        assert_eq!(
            join(AbsVal::Exact(3), AbsVal::Exact(4)),
            AbsVal::Interval(3, 4)
        );
        assert_eq!(join(a, AbsVal::Top), AbsVal::Top);
        // Widening keeps contained states, jumps on growth.
        assert_eq!(
            widen(AbsVal::Interval(0, 9), AbsVal::Interval(2, 5)),
            AbsVal::Interval(0, 9)
        );
        assert_eq!(
            widen(AbsVal::Interval(0, 9), AbsVal::Interval(0, 10)),
            AbsVal::Top
        );
        assert_eq!(widen(AbsVal::Exact(1), AbsVal::Interval(1, 2)), AbsVal::Top);
    }

    #[test]
    fn reversed_pairs_normalize_instead_of_going_empty() {
        // The domain has no empty interval: `interval` sorts its endpoints,
        // so a would-be-empty `[9, 2]` becomes the sound `[2, 9]`.
        assert_eq!(AbsVal::interval(9, 2), AbsVal::Interval(2, 9));
        assert_eq!(AbsVal::interval(7, 7), AbsVal::Interval(7, 7));
        assert!(matches!(AbsVal::interval(7, 7), AbsVal::Interval(..)));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        const INT_OPS: [AluOp; 6] = [
            AluOp::IAdd,
            AluOp::ISub,
            AluOp::IMul,
            AluOp::IShl,
            AluOp::IAnd,
            AluOp::IMin,
        ];
        const ALL_OPS: [AluOp; 11] = [
            AluOp::IAdd,
            AluOp::ISub,
            AluOp::IMul,
            AluOp::IShl,
            AluOp::IAnd,
            AluOp::IMin,
            AluOp::FAdd,
            AluOp::FSub,
            AluOp::FMul,
            AluOp::FMin,
            AluOp::FMax,
        ];

        /// A concrete value together with a random abstraction of it. Values
        /// cluster near 0 and `u32::MAX` so add/sub/mul/shl wrap boundaries
        /// are exercised, not just the comfortable middle.
        fn member() -> impl Strategy<Value = (AbsVal, u32)> {
            let value = prop_oneof![
                any::<u32>(),
                0u32..16,
                (u32::MAX - 16)..=u32::MAX,
                (0u32..16).prop_map(|k| 1u32 << (31 - k % 32)),
            ];
            (value, any::<u32>(), any::<u32>(), 0u8..4).prop_map(|(v, a, b, kind)| {
                let abs = match kind {
                    0 => AbsVal::Exact(v),
                    1 => AbsVal::Top,
                    // Loose interval around v…
                    2 => AbsVal::Interval(v.saturating_sub(a), v.saturating_add(b)),
                    // …and the tight singleton, which must stay an interval.
                    _ => AbsVal::Interval(v, v),
                };
                (abs, v)
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(512))]

            /// Soundness of the binary transfer: whenever the inputs contain
            /// the concrete operands, the output contains the executor's
            /// concrete (wrapping) result. Covers add/sub/mul/shl wrap
            /// boundaries because `member` biases operands toward them.
            #[test]
            fn alu_transfer_is_sound((a, x) in member(), (b, y) in member(), op_ix in 0usize..11) {
                let op = ALL_OPS[op_ix];
                let r = alu_abs(op, a, b);
                prop_assert!(
                    r.contains(interp::alu(op, x, y)),
                    "{op:?}: {a:?}∋{x} , {b:?}∋{y} gave {r:?} ∌ {}",
                    interp::alu(op, x, y)
                );
            }

            /// Soundness of the `mad` transfer, both integer and float forms.
            #[test]
            fn mad_transfer_is_sound(
                (a, x) in member(), (b, y) in member(), (c, z) in member(), float in any::<bool>()
            ) {
                let r = mad_abs(float, a, b, c);
                prop_assert!(r.contains(interp::mad(float, x, y, z)));
            }

            /// Soundness of the unary transfer for every op.
            #[test]
            fn unary_transfer_is_sound((a, x) in member(), op_ix in 0usize..4) {
                let op = [UnaryOp::FRsqrt, UnaryOp::FNeg, UnaryOp::U2F, UnaryOp::F2U][op_ix];
                prop_assert!(unary_abs(op, a).contains(interp::unary(op, x)));
            }

            /// A decided abstract compare agrees with the concrete compare on
            /// every contained concretization.
            #[test]
            fn decided_compares_are_sound((a, x) in member(), (b, y) in member(), op_ix in 0usize..5) {
                let op = [CmpOp::ULt, CmpOp::UGe, CmpOp::UEq, CmpOp::UNe, CmpOp::FLt][op_ix];
                if let Some(decided) = compare_abs(op, a, b) {
                    prop_assert_eq!(decided, interp::compare(op, x, y));
                }
            }

            /// `join` is an upper bound of both arguments.
            #[test]
            fn join_is_an_upper_bound((a, x) in member(), (b, y) in member()) {
                let j = join(a, b);
                prop_assert!(j.contains(x) && j.contains(y));
            }

            /// Widening is sound (covers both arguments) and terminates: the
            /// chain `s := widen(s, join(s, v))` strictly grows at most twice
            /// for any value sequence — the lattice has height 2 above any
            /// starting point — so the fixpoint loop's iteration budget holds.
            #[test]
            fn widening_is_sound_and_terminates(
                (s0, x0) in member(),
                seq in proptest::collection::vec(member(), 1..24)
            ) {
                let mut state = s0;
                let mut changes = 0;
                for &(v, _) in &seq {
                    let next = widen(state, join(state, v));
                    prop_assert!(next.contains(x0), "widening dropped the seed value");
                    if let Some(xv) = v.bounds() {
                        prop_assert!(next.contains(xv.0) && next.contains(xv.1));
                    }
                    if next != state {
                        changes += 1;
                        state = next;
                    }
                }
                prop_assert!(changes <= 2, "widening chain changed {changes} times");
                // And the fixpoint really is a fixpoint.
                prop_assert_eq!(widen(state, join(state, state)), state);
            }

            /// Interval-derived singletons never collapse into the affine
            /// fragment: if neither input is `Exact`, the output isn't either.
            #[test]
            fn intervals_never_reenter_the_exact_fragment(
                (a, _) in member(), (b, _) in member(), op_ix in 0usize..6
            ) {
                prop_assume!(a.as_exact().is_none() || b.as_exact().is_none());
                let r = alu_abs(INT_OPS[op_ix], a, b);
                prop_assert!(r.as_exact().is_none(), "{r:?} leaked into the exact fragment");
            }
        }
    }
}
