//! The per-warp abstract interpreter behind [`crate::analyze`].
//!
//! The interpreter walks a kernel's structured body once per (block, warp)
//! with a 32-lane vector of *optional* register values: `Some(bits)` when the
//! value is statically known, `None` when it depends on loaded data or on
//! control flow the analysis cannot resolve. Arithmetic mirrors
//! `exec::machine` bit-for-bit (the same wrapping u32 ops, the same
//! `f32::from_bits` float rules, the same `wrapping_add`-then-widen address
//! computation), so whenever every input of an address is known the derived
//! per-lane addresses are *exactly* the addresses the dynamic engines see —
//! which is what lets the static transaction prediction feed the very same
//! [`crate::coalesce::coalesce_half_warp`] oracle the timed executor uses and
//! come out equal.
//!
//! Unknowns poison forward: an instruction executed under uncertain control
//! flow, or fed a `None`, defines `None`. Memory sites touched with unknown
//! addresses are recorded as *inexact* and excluded from the prediction
//! (reported via an `unanalyzable` info diagnostic instead of a guess).

use std::collections::{BTreeMap, HashSet};

use super::{AnalysisConfig, Diagnostic, LintKind, Severity};
use crate::banks::conflict_degree;
use crate::coalesce::{coalesce_half_warp, AccessWidth};
use crate::fault::FaultSite;
use crate::ir::{
    AluOp, CmpOp, Instr, InstrIndexer, Kernel, MemSpace, Operand, Pred, Reg, SpecialReg, Stmt,
    UnaryOp,
};

/// Warp width (matches `exec::machine::WARP`).
const WARP: usize = 32;

/// A statement annotated with the stable instruction indices of
/// [`InstrIndexer`] — shared coordinate system with `ir::pretty` and the
/// executors' retired-instruction counters.
pub(crate) enum IStmt<'k> {
    /// A plain instruction and its index.
    I(u64, &'k Instr),
    /// A counted loop with the indices of its lowered init `mov` and
    /// `add`/`setp`/`bra` latch triple.
    For {
        init: u64,
        var: Reg,
        start: &'k Operand,
        end: &'k Operand,
        step: u32,
        body: Vec<IStmt<'k>>,
        latch: (u64, u64, u64),
    },
    /// Masked conditional (no indices: `IfMasked` markers do not retire).
    If {
        pred: Pred,
        negate: bool,
        then: Vec<IStmt<'k>>,
        els: Vec<IStmt<'k>>,
    },
    /// Block barrier (no index).
    Sync,
    /// Divergent bottom-tested loop and the index of its backedge branch.
    While {
        pred: Pred,
        negate: bool,
        body: Vec<IStmt<'k>>,
        backedge: u64,
    },
}

/// Annotate a statement list with stable instruction indices.
pub(crate) fn index_stmts<'k>(stmts: &'k [Stmt], ix: &mut InstrIndexer) -> Vec<IStmt<'k>> {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::I(i) => IStmt::I(ix.instr(), i),
            Stmt::For {
                var,
                start,
                end,
                step,
                body,
            } => {
                let init = ix.instr();
                let body = index_stmts(body, ix);
                let latch = ix.for_latch();
                IStmt::For {
                    init,
                    var: *var,
                    start,
                    end,
                    step: *step,
                    body,
                    latch,
                }
            }
            Stmt::If {
                pred,
                negate,
                then,
                els,
            } => IStmt::If {
                pred: *pred,
                negate: *negate,
                then: index_stmts(then, ix),
                els: index_stmts(els, ix),
            },
            Stmt::Sync => IStmt::Sync,
            Stmt::While { pred, negate, body } => {
                let body = index_stmts(body, ix);
                let backedge = ix.while_backedge();
                IStmt::While {
                    pred: *pred,
                    negate: *negate,
                    body,
                    backedge,
                }
            }
        })
        .collect()
}

/// How per-lane address deltas at a site have looked so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StrideTrack {
    /// No adjacent-lane pair observed yet.
    Unset,
    /// Every adjacent active lane pair differed by this many bytes.
    Const(i64),
    /// Mixed deltas.
    Mixed,
}

/// Accumulated static facts about one `Ld`/`St` site.
pub(crate) struct SiteAcc {
    pub instr: u64,
    pub space: MemSpace,
    pub is_load: bool,
    pub width_words: u32,
    /// Every execution of this site had fully known, in-spec addresses.
    pub exact: bool,
    /// A lane was seen with a misaligned address (dynamic run would fault).
    pub misaligned: bool,
    pub transactions: u64,
    pub bus_bytes: u64,
    /// Transactions a perfectly coalesced access pattern would need.
    pub ideal: u64,
    /// Half-warp issues observed (with at least one active lane).
    pub half_warps: u64,
    pub stride: StrideTrack,
    /// Worst shared-memory bank-conflict degree (shared sites only).
    pub bank_degree: u32,
}

impl SiteAcc {
    fn new(instr: u64, space: MemSpace, is_load: bool, width_words: u32) -> SiteAcc {
        SiteAcc {
            instr,
            space,
            is_load,
            width_words,
            exact: true,
            misaligned: false,
            transactions: 0,
            bus_bytes: 0,
            ideal: 0,
            half_warps: 0,
            stride: StrideTrack::Unset,
            bank_degree: 1,
        }
    }
}

/// One shared-memory word touched by one thread, stamped with the barrier
/// phase it happened in — the input to the cross-thread race check.
struct SharedEv {
    phase: u64,
    word: u64,
    thread: u32,
    is_write: bool,
    instr: u64,
}

/// Where the interpreter deposits everything it learns.
pub(crate) struct Sink {
    pub sites: BTreeMap<u64, SiteAcc>,
    pub diags: Vec<Diagnostic>,
    /// The global-transaction prediction covers every dynamic transaction.
    pub exact: bool,
    dedup: HashSet<String>,
}

impl Sink {
    pub(crate) fn new() -> Sink {
        Sink {
            sites: BTreeMap::new(),
            diags: Vec::new(),
            exact: true,
            dedup: HashSet::new(),
        }
    }

    fn push_once(&mut self, key: String, d: Diagnostic) {
        if self.dedup.insert(key) {
            self.diags.push(d);
        }
    }
}

fn site_at(kernel: &str, block: u32, thread: Option<u32>, instr: Option<u64>) -> FaultSite {
    FaultSite {
        kernel: Some(kernel.to_string()),
        block: Some(block),
        thread,
        instruction: instr,
    }
}

/// Run the abstract interpretation over every (block, warp) of the launch,
/// then the per-block race and barrier-deadlock checks.
pub(crate) fn interpret(
    kernel: &Kernel,
    tree: &[IStmt<'_>],
    cfg: &AnalysisConfig,
    sink: &mut Sink,
) {
    let warps = cfg.block.div_ceil(WARP as u32);
    for block_id in 0..cfg.grid {
        let mut events: Vec<SharedEv> = Vec::new();
        let mut sync_counts: Vec<u64> = Vec::new();
        let mut any_uncertain = false;
        let mut any_aborted = false;
        for w in 0..warps {
            let mut wi = WarpInterp::new(kernel, cfg, block_id, w, sink, &mut events);
            let live = wi.live;
            let aborted = wi.walk(tree, live, true).is_err();
            sync_counts.push(wi.sync_count);
            any_uncertain |= wi.sync_uncertain;
            any_aborted |= aborted;
        }
        if !any_aborted && !any_uncertain {
            check_deadlock(kernel, block_id, &sync_counts, sink);
        }
        check_races(kernel, block_id, &events, sink);
    }
}

/// Unequal per-warp barrier counts: some warp waits at a `bar.sync` the
/// others never reach.
fn check_deadlock(kernel: &Kernel, block_id: u32, sync_counts: &[u64], sink: &mut Sink) {
    let min = sync_counts.iter().min().copied().unwrap_or(0);
    let max = sync_counts.iter().max().copied().unwrap_or(0);
    if min != max {
        sink.push_once(
            "barrier-deadlock".to_string(),
            Diagnostic {
                severity: Severity::Error,
                kind: LintKind::BarrierDeadlock,
                site: site_at(&kernel.name, block_id, None, None),
                message: format!(
                    "warps of the same block retire different numbers of barriers ({min} vs \
                     {max}); the block hangs at bar.sync"
                ),
                fixit: Some(
                    "make every warp execute the same barriers: move the Sync out of divergent \
                     control flow"
                        .to_string(),
                ),
            },
        );
    }
}

/// Same shared word, same barrier interval, more than one thread, at least
/// one writer: the inter-thread ordering is undefined.
fn check_races(kernel: &Kernel, block_id: u32, events: &[SharedEv], sink: &mut Sink) {
    let mut cells: BTreeMap<(u64, u64), Vec<&SharedEv>> = BTreeMap::new();
    for e in events {
        cells.entry((e.phase, e.word)).or_default().push(e);
    }
    for ((phase, word), evs) in cells {
        let Some(writer) = evs.iter().find(|e| e.is_write) else {
            continue;
        };
        let Some(other) = evs.iter().find(|e| e.thread != writer.thread) else {
            continue;
        };
        let lo = writer.instr.min(other.instr);
        let hi = writer.instr.max(other.instr);
        sink.push_once(
            format!("shared-race:{lo}:{hi}"),
            Diagnostic {
                severity: Severity::Error,
                kind: LintKind::SharedRace,
                site: site_at(&kernel.name, block_id, Some(other.thread), Some(hi)),
                message: format!(
                    "shared word {word} is written by thread {} (instruction {}) and {} by \
                     thread {} (instruction {}) in the same barrier interval ({phase})",
                    writer.thread,
                    writer.instr,
                    if other.is_write {
                        "also written"
                    } else {
                        "read"
                    },
                    other.thread,
                    other.instr
                ),
                fixit: Some(
                    "insert a Sync between the write and the cross-thread access".to_string(),
                ),
            },
        );
    }
}

/// Per-warp interpreter state.
struct WarpInterp<'a, 'k> {
    cfg: &'a AnalysisConfig,
    kernel: &'k Kernel,
    block_id: u32,
    warp: u32,
    /// Mask of lanes that exist (thread id < block size).
    live: u32,
    /// `[lane][reg]`, `None` = statically unknown.
    regs: Vec<Vec<Option<u32>>>,
    preds: Vec<Vec<Option<bool>>>,
    sync_count: u64,
    sync_uncertain: bool,
    sink: &'a mut Sink,
    events: &'a mut Vec<SharedEv>,
}

impl<'a, 'k> WarpInterp<'a, 'k> {
    fn new(
        kernel: &'k Kernel,
        cfg: &'a AnalysisConfig,
        block_id: u32,
        warp: u32,
        sink: &'a mut Sink,
        events: &'a mut Vec<SharedEv>,
    ) -> Self {
        let first = warp * WARP as u32;
        let live = if cfg.block >= first + WARP as u32 {
            u32::MAX
        } else {
            (1u32 << (cfg.block - first)) - 1
        };
        // Registers zero-init like `BlockCtx`, params bound to Reg(0..).
        let mut regs = vec![vec![Some(0u32); kernel.n_regs.max(kernel.n_params) as usize]; WARP];
        for lane in &mut regs {
            for (p, v) in cfg.params.iter().enumerate() {
                lane[p] = Some(*v);
            }
        }
        let preds = vec![vec![None; kernel.n_preds as usize]; WARP];
        WarpInterp {
            cfg,
            kernel,
            block_id,
            warp,
            live,
            regs,
            preds,
            sync_count: 0,
            sync_uncertain: false,
            sink,
            events,
        }
    }

    fn lanes(&self, mask: u32) -> Vec<usize> {
        (0..WARP).filter(|l| mask & (1 << l) != 0).collect()
    }

    fn operand(&self, lane: usize, op: &Operand) -> Option<u32> {
        match op {
            Operand::R(r) => self.regs[lane][r.0 as usize],
            Operand::ImmF(f) => Some(f.to_bits()),
            Operand::ImmU(u) => Some(*u),
        }
    }

    /// Walk a statement list under a lane mask. `exact` means the mask and
    /// every iteration count on the path here were statically resolved.
    /// `Err(())` aborts the warp (mirrors a dynamic `DivergentBranch` fault).
    fn walk(&mut self, stmts: &[IStmt<'k>], mask: u32, exact: bool) -> Result<(), ()> {
        for s in stmts {
            match s {
                IStmt::I(idx, i) => self.exec(*idx, i, mask, exact),
                IStmt::Sync => self.sync(exact, mask),
                IStmt::If {
                    pred,
                    negate,
                    then,
                    els,
                } => {
                    let mut known = true;
                    let mut then_mask = 0u32;
                    for l in self.lanes(mask) {
                        match self.preds[l][pred.0 as usize] {
                            Some(v) => {
                                if v != *negate {
                                    then_mask |= 1 << l;
                                }
                            }
                            None => known = false,
                        }
                    }
                    if exact && known {
                        let else_mask = mask & !then_mask;
                        if then_mask != 0 {
                            self.walk(then, then_mask, true)?;
                        }
                        if else_mask != 0 {
                            self.walk(els, else_mask, true)?;
                        }
                    } else {
                        self.walk(then, mask, false)?;
                        self.walk(els, mask, false)?;
                    }
                }
                IStmt::For {
                    init: _,
                    var,
                    start,
                    end,
                    step,
                    body,
                    latch,
                } => {
                    self.run_for(*var, start, end, *step, body, *latch, mask, exact)?;
                }
                IStmt::While { body, backedge, .. } => {
                    // Data-dependent trip count and per-lane mask narrowing:
                    // a single unknown-mode pass poisons every def.
                    self.sink.exact = false;
                    self.sink.push_once(
                        format!("while:{backedge}"),
                        Diagnostic {
                            severity: Severity::Info,
                            kind: LintKind::Unanalyzable,
                            site: site_at(&self.kernel.name, self.block_id, None, Some(*backedge)),
                            message: "do/while trip count is data-dependent; the body is \
                                      analyzed for a single symbolic iteration"
                                .to_string(),
                            fixit: None,
                        },
                    );
                    self.walk(body, mask, false)?;
                }
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn run_for(
        &mut self,
        var: Reg,
        start: &Operand,
        end: &Operand,
        step: u32,
        body: &[IStmt<'k>],
        latch: (u64, u64, u64),
        mask: u32,
        exact: bool,
    ) -> Result<(), ()> {
        let lanes = self.lanes(mask);
        for &l in &lanes {
            self.regs[l][var.0 as usize] = if exact { self.operand(l, start) } else { None };
        }
        let starts_known = lanes
            .iter()
            .all(|&l| self.regs[l][var.0 as usize].is_some());
        if !exact || !starts_known {
            return self.run_for_opaque(var, body, mask);
        }
        // The lowered form is bottom-tested: the body runs at least once.
        let mut iters: u64 = 0;
        loop {
            iters += 1;
            if iters > self.cfg.max_steps {
                self.sink.exact = false;
                let kernel = self.kernel.name.clone();
                let block = self.block_id;
                self.sink.push_once(
                    format!("budget:{}", latch.2),
                    Diagnostic {
                        severity: Severity::Info,
                        kind: LintKind::Unanalyzable,
                        site: site_at(&kernel, block, None, Some(latch.2)),
                        message: format!(
                            "loop exceeded the static interpretation budget of {} iterations; \
                             state after it is treated as unknown",
                            self.cfg.max_steps
                        ),
                        fixit: None,
                    },
                );
                return self.run_for_opaque(var, body, mask);
            }
            self.walk(body, mask, true)?;
            // Latch: add var, var, step; setp var < end; bra.
            for &l in &lanes {
                let r = &mut self.regs[l][var.0 as usize];
                *r = r.map(|v| v.wrapping_add(step));
            }
            let mut cont = 0u32;
            let mut known = true;
            for &l in &lanes {
                match (self.regs[l][var.0 as usize], self.operand(l, end)) {
                    (Some(v), Some(e)) => {
                        if v < e {
                            cont |= 1 << l;
                        }
                    }
                    _ => known = false,
                }
            }
            if !known {
                // The bound (or the induction variable) was clobbered by
                // something unknown inside the body; give up on this loop.
                return self.run_for_opaque(var, body, mask);
            }
            if cont == 0 {
                return Ok(());
            }
            if cont != mask {
                // The executor refuses non-uniform loop backedges.
                let lane = (cont ^ mask).trailing_zeros();
                self.sink.exact = false;
                let kernel = self.kernel.name.clone();
                let block = self.block_id;
                let thread = self.warp * WARP as u32 + lane;
                self.sink.push_once(
                    format!("divloop:{}", latch.2),
                    Diagnostic {
                        severity: Severity::Error,
                        kind: LintKind::DivergentLoopBranch,
                        site: site_at(&kernel, block, Some(thread), Some(latch.2)),
                        message: format!(
                            "loop backedge diverges within a warp (taken mask {cont:#010x} of \
                             active {mask:#010x}); the executor faults with DivergentBranch here"
                        ),
                        fixit: Some(
                            "make the trip count uniform across the warp (pad the bound to a \
                             multiple of the block size)"
                                .to_string(),
                        ),
                    },
                );
                return Err(());
            }
        }
    }

    /// A loop whose trip count could not be resolved: one unknown-mode pass
    /// over the body (poisons its defs), induction variable unknown after.
    fn run_for_opaque(&mut self, var: Reg, body: &[IStmt<'k>], mask: u32) -> Result<(), ()> {
        self.walk(body, mask, false)?;
        for l in self.lanes(mask) {
            self.regs[l][var.0 as usize] = None;
        }
        Ok(())
    }

    fn sync(&mut self, exact: bool, mask: u32) {
        if exact && mask == self.live {
            self.sync_count += 1;
            return;
        }
        self.sync_uncertain = true;
        let kernel = self.kernel.name.clone();
        let block = self.block_id;
        if exact {
            // Statically proven: part of the warp skips this barrier.
            self.sink.push_once(
                "divergent-sync:error".to_string(),
                Diagnostic {
                    severity: Severity::Error,
                    kind: LintKind::DivergentSync,
                    site: site_at(&kernel, block, None, None),
                    message: format!(
                        "bar.sync reached by a strict subset of the warp's lanes (mask \
                         {mask:#010x} of {:#010x}): threads that skip the barrier leave the \
                         block deadlocked",
                        self.live
                    ),
                    fixit: Some("hoist the Sync out of the conditional".to_string()),
                },
            );
        } else {
            self.sink.push_once(
                "divergent-sync:warning".to_string(),
                Diagnostic {
                    severity: Severity::Warning,
                    kind: LintKind::DivergentSync,
                    site: site_at(&kernel, block, None, None),
                    message: "bar.sync under data-dependent control flow: the analysis cannot \
                              prove every thread reaches it"
                        .to_string(),
                    fixit: None,
                },
            );
        }
    }

    fn exec(&mut self, idx: u64, i: &Instr, mask: u32, exact: bool) {
        let lanes = self.lanes(mask);
        match i {
            Instr::Mov { dst, src } => {
                for &l in &lanes {
                    let v = if exact { self.operand(l, src) } else { None };
                    self.regs[l][dst.0 as usize] = v;
                }
            }
            Instr::Special { dst, sr } => {
                for &l in &lanes {
                    let v = if exact {
                        Some(match sr {
                            SpecialReg::TidX => self.warp * WARP as u32 + l as u32,
                            SpecialReg::CtaidX => self.block_id,
                            SpecialReg::NtidX => self.cfg.block,
                            SpecialReg::NctaidX => self.cfg.grid,
                        })
                    } else {
                        None
                    };
                    self.regs[l][dst.0 as usize] = v;
                }
            }
            Instr::Alu { op, dst, a, b } => {
                for &l in &lanes {
                    let v = if exact {
                        match (self.operand(l, a), self.operand(l, b)) {
                            (Some(x), Some(y)) => Some(alu(*op, x, y)),
                            _ => None,
                        }
                    } else {
                        None
                    };
                    self.regs[l][dst.0 as usize] = v;
                }
            }
            Instr::Mad {
                float,
                dst,
                a,
                b,
                c,
            } => {
                for &l in &lanes {
                    let v = if exact {
                        match (self.operand(l, a), self.operand(l, b), self.operand(l, c)) {
                            (Some(x), Some(y), Some(z)) => Some(mad(*float, x, y, z)),
                            _ => None,
                        }
                    } else {
                        None
                    };
                    self.regs[l][dst.0 as usize] = v;
                }
            }
            Instr::Unary { op, dst, a } => {
                for &l in &lanes {
                    let v = if exact {
                        self.operand(l, a).map(|x| unary(*op, x))
                    } else {
                        None
                    };
                    self.regs[l][dst.0 as usize] = v;
                }
            }
            Instr::Setp { dst, cmp, a, b } => {
                for &l in &lanes {
                    let v = if exact {
                        match (self.operand(l, a), self.operand(l, b)) {
                            (Some(x), Some(y)) => Some(compare(*cmp, x, y)),
                            _ => None,
                        }
                    } else {
                        None
                    };
                    self.preds[l][dst.0 as usize] = v;
                }
            }
            Instr::Ld {
                dsts,
                space,
                base,
                offset,
            } => {
                self.memory(idx, *space, true, *base, *offset, dsts.len(), mask, exact);
                for &l in &lanes {
                    for d in dsts {
                        self.regs[l][d.0 as usize] = None;
                    }
                }
            }
            Instr::St {
                srcs,
                space,
                base,
                offset,
            } => {
                self.memory(idx, *space, false, *base, *offset, srcs.len(), mask, exact);
            }
            Instr::Clock { dst } => {
                for &l in &lanes {
                    self.regs[l][dst.0 as usize] = None;
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn memory(
        &mut self,
        idx: u64,
        space: MemSpace,
        is_load: bool,
        base: Reg,
        offset: u32,
        words: usize,
        mask: u32,
        exact: bool,
    ) {
        let width_bytes = 4 * words as u64;
        let kernel_name = self.kernel.name.clone();
        let block = self.block_id;
        self.sink
            .sites
            .entry(idx)
            .or_insert_with(|| SiteAcc::new(idx, space, is_load, words as u32));
        let mark_inexact = |sink: &mut Sink| {
            if let Some(site) = sink.sites.get_mut(&idx) {
                site.exact = false;
            }
            if matches!(space, MemSpace::Global | MemSpace::Texture) {
                sink.exact = false;
            }
        };

        if space == MemSpace::Texture && !is_load {
            self.sink.push_once(
                format!("tex-write:{idx}"),
                Diagnostic {
                    severity: Severity::Error,
                    kind: LintKind::MisalignedAccess,
                    site: site_at(&kernel_name, block, None, Some(idx)),
                    message: "store to read-only texture space (the executor faults with \
                              ReadOnlyWrite)"
                        .to_string(),
                    fixit: None,
                },
            );
            mark_inexact(self.sink);
            return;
        }
        if !exact {
            mark_inexact(self.sink);
            return;
        }

        // Per-lane addresses, exactly as the machine computes them: u32
        // wrapping add, then widen.
        let mut addrs: Vec<Option<u64>> = vec![None; WARP];
        for l in self.lanes(mask) {
            addrs[l] = self.regs[l][base.0 as usize].map(|b| b.wrapping_add(offset) as u64);
        }
        if self.lanes(mask).iter().any(|&l| addrs[l].is_none()) {
            mark_inexact(self.sink);
            return;
        }

        // Alignment / bounds, mirroring `exec::machine`'s fault checks.
        let mut faulted = false;
        for l in self.lanes(mask) {
            let Some(addr) = addrs[l] else { continue };
            let thread = self.warp * WARP as u32 + l as u32;
            match space {
                MemSpace::Global | MemSpace::Texture => {
                    if !addr.is_multiple_of(width_bytes) {
                        faulted = true;
                        self.sink.push_once(
                            format!("misaligned:{idx}"),
                            Diagnostic {
                                severity: Severity::Error,
                                kind: LintKind::MisalignedAccess,
                                site: site_at(&kernel_name, block, Some(thread), Some(idx)),
                                message: format!(
                                    "{}-byte {} at address {addr:#x} is not naturally aligned; \
                                     the executor faults with Misaligned",
                                    width_bytes,
                                    if is_load { "load" } else { "store" }
                                ),
                                fixit: None,
                            },
                        );
                    }
                }
                MemSpace::Shared => {
                    if !addr.is_multiple_of(4) {
                        faulted = true;
                        self.sink.push_once(
                            format!("misaligned:{idx}"),
                            Diagnostic {
                                severity: Severity::Error,
                                kind: LintKind::MisalignedAccess,
                                site: site_at(&kernel_name, block, Some(thread), Some(idx)),
                                message: format!(
                                    "shared {} at address {addr:#x} is not word-aligned",
                                    if is_load { "load" } else { "store" }
                                ),
                                fixit: None,
                            },
                        );
                    } else if addr + width_bytes > self.kernel.smem_bytes as u64 {
                        faulted = true;
                        self.sink.push_once(
                            format!("smem-oob:{idx}"),
                            Diagnostic {
                                severity: Severity::Error,
                                kind: LintKind::OutOfBoundsShared,
                                site: site_at(&kernel_name, block, Some(thread), Some(idx)),
                                message: format!(
                                    "shared {} of {width_bytes} bytes at address {addr:#x} \
                                     overruns the {}-byte static allocation",
                                    if is_load { "load" } else { "store" },
                                    self.kernel.smem_bytes
                                ),
                                fixit: None,
                            },
                        );
                    }
                }
            }
        }
        if faulted {
            if let Some(site) = self.sink.sites.get_mut(&idx) {
                site.exact = false;
                site.misaligned = true;
            }
            self.sink.exact = false;
            return;
        }

        match space {
            MemSpace::Global => {
                let Some(width) = AccessWidth::from_bytes(width_bytes as u32) else {
                    mark_inexact(self.sink);
                    return;
                };
                // Track the adjacent-lane stride (for the fix-it text).
                let mut stride_here: Option<i64> = None;
                let mut stride_mixed = false;
                for l in 0..WARP - 1 {
                    if let (Some(a), Some(b)) = (addrs[l], addrs[l + 1]) {
                        let d = b as i64 - a as i64;
                        match stride_here {
                            None => stride_here = Some(d),
                            Some(p) if p != d => stride_mixed = true,
                            _ => {}
                        }
                    }
                }
                let half = self.cfg.device.half_warp as usize;
                let driver = self.cfg.driver;
                if let Some(site) = self.sink.sites.get_mut(&idx) {
                    for chunk in addrs.chunks(half) {
                        if chunk.iter().all(Option::is_none) {
                            continue;
                        }
                        let res = coalesce_half_warp(driver, chunk, width);
                        site.transactions += res.transactions.len() as u64;
                        site.bus_bytes +=
                            res.transactions.iter().map(|t| t.bytes as u64).sum::<u64>();
                        site.ideal += if width == AccessWidth::W16 { 2 } else { 1 };
                        site.half_warps += 1;
                    }
                    site.stride = match (site.stride, stride_here, stride_mixed) {
                        (_, _, true) | (StrideTrack::Mixed, _, _) => StrideTrack::Mixed,
                        (s, None, false) => s,
                        (StrideTrack::Unset, Some(d), false) => StrideTrack::Const(d),
                        (StrideTrack::Const(p), Some(d), false) => {
                            if p == d {
                                StrideTrack::Const(p)
                            } else {
                                StrideTrack::Mixed
                            }
                        }
                    };
                }
            }
            MemSpace::Texture => {
                // The texture path bypasses the coalescer; its transaction
                // count depends on dynamic cache state. Excluded from the
                // prediction (summarized as an info diagnostic later).
                mark_inexact(self.sink);
            }
            MemSpace::Shared => {
                let half = self.cfg.device.half_warp as usize;
                let banks = self.cfg.device.smem_banks;
                let mut degree = 1u32;
                let mut issues = 0u64;
                for chunk in addrs.chunks(half) {
                    if chunk.iter().all(Option::is_none) {
                        continue;
                    }
                    issues += 1;
                    for phase in 0..words as u64 {
                        let phase_addrs: Vec<Option<u64>> =
                            chunk.iter().map(|a| a.map(|a| a + 4 * phase)).collect();
                        degree = degree.max(conflict_degree(&phase_addrs, banks));
                    }
                }
                if let Some(site) = self.sink.sites.get_mut(&idx) {
                    site.bank_degree = site.bank_degree.max(degree);
                    site.half_warps += issues;
                }
                for l in self.lanes(mask) {
                    let Some(addr) = addrs[l] else { continue };
                    for w in 0..words as u64 {
                        self.events.push(SharedEv {
                            phase: self.sync_count,
                            word: addr / 4 + w,
                            thread: self.warp * WARP as u32 + l as u32,
                            is_write: !is_load,
                            instr: idx,
                        });
                    }
                }
            }
        }
    }
}

/// Exact bit-level ALU semantics, shared with [`super::verify`]'s constant
/// folder so symbolic proofs rest on the same arithmetic the executors use.
pub(crate) fn alu(op: AluOp, x: u32, y: u32) -> u32 {
    let (fx, fy) = (f32::from_bits(x), f32::from_bits(y));
    match op {
        AluOp::FAdd => (fx + fy).to_bits(),
        AluOp::FSub => (fx - fy).to_bits(),
        AluOp::FMul => (fx * fy).to_bits(),
        AluOp::FMin => fx.min(fy).to_bits(),
        AluOp::FMax => fx.max(fy).to_bits(),
        AluOp::IAdd => x.wrapping_add(y),
        AluOp::ISub => x.wrapping_sub(y),
        AluOp::IMul => x.wrapping_mul(y),
        AluOp::IShl => x.wrapping_shl(y),
        AluOp::IAnd => x & y,
        AluOp::IMin => x.min(y),
    }
}

/// Exact `mad` semantics (f32 fused form or wrapping u32), as in
/// `exec::machine`.
pub(crate) fn mad(float: bool, a: u32, b: u32, c: u32) -> u32 {
    if float {
        (f32::from_bits(a) * f32::from_bits(b) + f32::from_bits(c)).to_bits()
    } else {
        a.wrapping_mul(b).wrapping_add(c)
    }
}

/// Exact unary-op semantics, as in `exec::machine`.
pub(crate) fn unary(op: UnaryOp, x: u32) -> u32 {
    match op {
        UnaryOp::FRsqrt => (1.0 / f32::from_bits(x).sqrt()).to_bits(),
        UnaryOp::FNeg => (-f32::from_bits(x)).to_bits(),
        UnaryOp::U2F => (x as f32).to_bits(),
        UnaryOp::F2U => f32::from_bits(x) as u32,
    }
}

/// Exact predicate-compare semantics, as in `exec::machine`.
pub(crate) fn compare(op: CmpOp, x: u32, y: u32) -> bool {
    match op {
        CmpOp::ULt => x < y,
        CmpOp::UGe => x >= y,
        CmpOp::UEq => x == y,
        CmpOp::UNe => x != y,
        CmpOp::FLt => f32::from_bits(x) < f32::from_bits(y),
    }
}
