//! The per-warp abstract interpreter behind [`crate::analyze`].
//!
//! The interpreter walks a kernel's structured body once per (block, warp)
//! with a 32-lane vector of abstract register values drawn from the interval
//! lattice of [`super::domain`]: `Exact(bits)` when the value is statically
//! known, `Interval(lo, hi)` when only bounds are known (data-dependent but
//! bounded loops and branches), `Top` when nothing is. Exact arithmetic
//! mirrors `exec::machine` bit-for-bit (the same wrapping u32 ops, the same
//! `f32::from_bits` float rules, the same `wrapping_add`-then-widen address
//! computation), so whenever every input of an address is exact the derived
//! per-lane addresses are *exactly* the addresses the dynamic engines see —
//! which is what lets the static transaction prediction feed the very same
//! [`crate::coalesce::coalesce_half_warp`] oracle the timed executor uses and
//! come out equal.
//!
//! Non-affine control flow is over-approximated rather than abandoned:
//!
//! * an `If` whose predicate is not statically known walks both branches
//!   from the same entry state and **joins** the results (each lane takes
//!   one branch or the other, so the join covers both);
//! * a loop whose trip count is not statically known runs a **fixpoint with
//!   widening** over its body to find an invariant state, then one recorded
//!   pass under a trip-count interval `[lo, hi]` capped by the analysis
//!   budget — memory sites inside accumulate `[best, worst]` transaction
//!   bounds scaled by the trip interval instead of exact counts.
//!
//! Sites whose addresses are not exact are still *inexact* (excluded from
//! `predicted_transactions`, reported via an `unanalyzable` info diagnostic)
//! but now carry interval address ranges for the bounds certifier and
//! `[tx_lo, tx_hi]` transaction bounds for the cost model.

use std::collections::{BTreeMap, HashSet};

use super::domain::{self, AbsVal};
use super::{AnalysisConfig, Diagnostic, LintKind, Severity};
use crate::banks::conflict_degree;
use crate::coalesce::{coalesce_half_warp, AccessWidth};
use crate::fault::FaultSite;
use crate::ir::{
    AluOp, CmpOp, Instr, InstrIndexer, Kernel, MemSpace, Operand, Pred, Reg, SpecialReg, Stmt,
    UnaryOp,
};

/// Warp width (matches `exec::machine::WARP`).
const WARP: usize = 32;

/// Fixpoint rounds before the all-`Top` fallback. Widening makes each round
/// strictly ascend a height-2 lattice per register, so real kernels converge
/// in a handful of rounds; the cap is a backstop, not a tuning knob.
const FIX_ROUNDS: u32 = 64;

/// A statement annotated with the stable instruction indices of
/// [`InstrIndexer`] — shared coordinate system with `ir::pretty` and the
/// executors' retired-instruction counters.
pub(crate) enum IStmt<'k> {
    /// A plain instruction and its index.
    I(u64, &'k Instr),
    /// A counted loop with the indices of its lowered init `mov` and
    /// `add`/`setp`/`bra` latch triple.
    For {
        init: u64,
        var: Reg,
        start: &'k Operand,
        end: &'k Operand,
        step: u32,
        body: Vec<IStmt<'k>>,
        latch: (u64, u64, u64),
    },
    /// Masked conditional (no indices: `IfMasked` markers do not retire).
    If {
        pred: Pred,
        negate: bool,
        then: Vec<IStmt<'k>>,
        els: Vec<IStmt<'k>>,
    },
    /// Block barrier (no index).
    Sync,
    /// Divergent bottom-tested loop and the index of its backedge branch.
    While {
        pred: Pred,
        negate: bool,
        body: Vec<IStmt<'k>>,
        backedge: u64,
    },
}

/// Annotate a statement list with stable instruction indices.
pub(crate) fn index_stmts<'k>(stmts: &'k [Stmt], ix: &mut InstrIndexer) -> Vec<IStmt<'k>> {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::I(i) => IStmt::I(ix.instr(), i),
            Stmt::For {
                var,
                start,
                end,
                step,
                body,
            } => {
                let init = ix.instr();
                let body = index_stmts(body, ix);
                let latch = ix.for_latch();
                IStmt::For {
                    init,
                    var: *var,
                    start,
                    end,
                    step: *step,
                    body,
                    latch,
                }
            }
            Stmt::If {
                pred,
                negate,
                then,
                els,
            } => IStmt::If {
                pred: *pred,
                negate: *negate,
                then: index_stmts(then, ix),
                els: index_stmts(els, ix),
            },
            Stmt::Sync => IStmt::Sync,
            Stmt::While { pred, negate, body } => {
                let body = index_stmts(body, ix);
                let backedge = ix.while_backedge();
                IStmt::While {
                    pred: *pred,
                    negate: *negate,
                    body,
                    backedge,
                }
            }
        })
        .collect()
}

/// Does this statement list (re)define `var`? Loops whose body clobbers the
/// induction variable lose the a-priori hull `run_for_abstract` computes.
fn body_writes(stmts: &[IStmt<'_>], var: Reg) -> bool {
    stmts.iter().any(|s| match s {
        IStmt::I(_, i) => match i {
            Instr::Mov { dst, .. }
            | Instr::Special { dst, .. }
            | Instr::Alu { dst, .. }
            | Instr::Mad { dst, .. }
            | Instr::Unary { dst, .. }
            | Instr::Clock { dst } => *dst == var,
            Instr::Ld { dsts, .. } => dsts.contains(&var),
            Instr::Setp { .. } | Instr::St { .. } => false,
        },
        IStmt::For {
            var: v, body: b, ..
        } => *v == var || body_writes(b, var),
        IStmt::If { then, els, .. } => body_writes(then, var) || body_writes(els, var),
        IStmt::While { body: b, .. } => body_writes(b, var),
        IStmt::Sync => false,
    })
}

/// Bottom-tested trip count under exact bounds (mirrors `ir::count`):
/// the body always runs once, then `ceil((end - start) / step)` total.
fn trip(start: u32, end: u32, step: u32) -> u64 {
    if end <= start {
        1
    } else {
        ((end - start) as u64).div_ceil(step as u64)
    }
}

/// How per-lane address deltas at a site have looked so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StrideTrack {
    /// No adjacent-lane pair observed yet.
    Unset,
    /// Every adjacent active lane pair differed by this many bytes.
    Const(i64),
    /// Mixed deltas.
    Mixed,
}

/// Accumulated static facts about one `Ld`/`St` site.
pub(crate) struct SiteAcc {
    pub instr: u64,
    pub space: MemSpace,
    pub is_load: bool,
    pub width_words: u32,
    /// Every execution of this site had fully known, in-spec addresses.
    pub exact: bool,
    /// A lane was seen with a misaligned address (dynamic run would fault).
    pub misaligned: bool,
    pub transactions: u64,
    pub bus_bytes: u64,
    /// Transactions a perfectly coalesced access pattern would need.
    pub ideal: u64,
    /// Half-warp issues observed (with at least one active lane).
    pub half_warps: u64,
    pub stride: StrideTrack,
    /// Worst shared-memory bank-conflict degree (shared sites only).
    pub bank_degree: u32,
    /// Best-case transaction bound (global sites; equals `transactions`
    /// when the site is exact).
    pub tx_lo: u64,
    /// Worst-case transaction bound (global sites; equals `transactions`
    /// when the site is exact).
    pub tx_hi: u64,
    /// Worst-case half-warp issue bound (trip-interval scaled).
    pub half_warps_hi: u64,
    /// Lowest byte this site can touch (inclusive; `u64::MAX` = none seen).
    pub addr_lo: u64,
    /// One past the highest byte this site can touch (exclusive).
    pub addr_hi: u64,
    /// Some execution's address range could not be bounded at all.
    pub addr_unbounded: bool,
    /// Kernel parameter holding the base address of the buffer this site
    /// falls in (global sites only): the largest nonzero parameter value
    /// that does not exceed every observed address. `None` until a
    /// recorded execution attributes the site.
    pub param_base: Option<u16>,
    /// Different executions attributed the site to different parameters
    /// (or some execution could not be attributed at all) — the site does
    /// not belong to a single buffer.
    pub param_mixed: bool,
}

impl SiteAcc {
    fn new(instr: u64, space: MemSpace, is_load: bool, width_words: u32) -> SiteAcc {
        SiteAcc {
            instr,
            space,
            is_load,
            width_words,
            exact: true,
            misaligned: false,
            transactions: 0,
            bus_bytes: 0,
            ideal: 0,
            half_warps: 0,
            stride: StrideTrack::Unset,
            bank_degree: 1,
            tx_lo: 0,
            tx_hi: 0,
            half_warps_hi: 0,
            addr_lo: u64::MAX,
            addr_hi: 0,
            addr_unbounded: false,
            param_base: None,
            param_mixed: false,
        }
    }
}

/// One shared-memory word touched by one thread, stamped with the barrier
/// phase it happened in — the input to the cross-thread race check.
struct SharedEv {
    phase: u64,
    word: u64,
    thread: u32,
    is_write: bool,
    instr: u64,
}

/// Where the interpreter deposits everything it learns.
pub(crate) struct Sink {
    pub sites: BTreeMap<u64, SiteAcc>,
    pub diags: Vec<Diagnostic>,
    /// The global-transaction prediction covers every dynamic transaction.
    pub exact: bool,
    dedup: HashSet<String>,
}

impl Sink {
    pub(crate) fn new() -> Sink {
        Sink {
            sites: BTreeMap::new(),
            diags: Vec::new(),
            exact: true,
            dedup: HashSet::new(),
        }
    }

    fn push_once(&mut self, key: String, d: Diagnostic) {
        if self.dedup.insert(key) {
            self.diags.push(d);
        }
    }
}

fn site_at(kernel: &str, block: u32, thread: Option<u32>, instr: Option<u64>) -> FaultSite {
    FaultSite {
        kernel: Some(kernel.to_string()),
        block: Some(block),
        thread,
        instruction: instr,
    }
}

/// Run the abstract interpretation over every (block, warp) of the launch,
/// then the per-block race and barrier-deadlock checks.
pub(crate) fn interpret(
    kernel: &Kernel,
    tree: &[IStmt<'_>],
    cfg: &AnalysisConfig,
    sink: &mut Sink,
) {
    let warps = cfg.block.div_ceil(WARP as u32);
    for block_id in 0..cfg.grid {
        let mut events: Vec<SharedEv> = Vec::new();
        let mut sync_counts: Vec<u64> = Vec::new();
        let mut any_uncertain = false;
        let mut any_aborted = false;
        for w in 0..warps {
            let mut wi = WarpInterp::new(kernel, cfg, block_id, w, sink, &mut events);
            let live = wi.live;
            let aborted = wi.walk(tree, live, true).is_err();
            sync_counts.push(wi.sync_count);
            any_uncertain |= wi.sync_uncertain;
            any_aborted |= aborted;
        }
        if !any_aborted && !any_uncertain {
            check_deadlock(kernel, block_id, &sync_counts, sink);
        }
        check_races(kernel, block_id, &events, sink);
    }
}

/// Unequal per-warp barrier counts: some warp waits at a `bar.sync` the
/// others never reach.
fn check_deadlock(kernel: &Kernel, block_id: u32, sync_counts: &[u64], sink: &mut Sink) {
    let min = sync_counts.iter().min().copied().unwrap_or(0);
    let max = sync_counts.iter().max().copied().unwrap_or(0);
    if min != max {
        sink.push_once(
            "barrier-deadlock".to_string(),
            Diagnostic {
                severity: Severity::Error,
                kind: LintKind::BarrierDeadlock,
                site: site_at(&kernel.name, block_id, None, None),
                message: format!(
                    "warps of the same block retire different numbers of barriers ({min} vs \
                     {max}); the block hangs at bar.sync"
                ),
                fixit: Some(
                    "make every warp execute the same barriers: move the Sync out of divergent \
                     control flow"
                        .to_string(),
                ),
            },
        );
    }
}

/// Same shared word, same barrier interval, more than one thread, at least
/// one writer: the inter-thread ordering is undefined.
fn check_races(kernel: &Kernel, block_id: u32, events: &[SharedEv], sink: &mut Sink) {
    let mut cells: BTreeMap<(u64, u64), Vec<&SharedEv>> = BTreeMap::new();
    for e in events {
        cells.entry((e.phase, e.word)).or_default().push(e);
    }
    for ((phase, word), evs) in cells {
        let Some(writer) = evs.iter().find(|e| e.is_write) else {
            continue;
        };
        let Some(other) = evs.iter().find(|e| e.thread != writer.thread) else {
            continue;
        };
        let lo = writer.instr.min(other.instr);
        let hi = writer.instr.max(other.instr);
        sink.push_once(
            format!("shared-race:{lo}:{hi}"),
            Diagnostic {
                severity: Severity::Error,
                kind: LintKind::SharedRace,
                site: site_at(&kernel.name, block_id, Some(other.thread), Some(hi)),
                message: format!(
                    "shared word {word} is written by thread {} (instruction {}) and {} by \
                     thread {} (instruction {}) in the same barrier interval ({phase})",
                    writer.thread,
                    writer.instr,
                    if other.is_write {
                        "also written"
                    } else {
                        "read"
                    },
                    other.thread,
                    other.instr
                ),
                fixit: Some(
                    "insert a Sync between the write and the cross-thread access".to_string(),
                ),
            },
        );
    }
}

/// A copy of the value state, for branch joins and loop fixpoints.
struct Snapshot {
    regs: Vec<Vec<AbsVal>>,
    preds: Vec<Vec<Option<bool>>>,
}

/// Per-warp interpreter state.
struct WarpInterp<'a, 'k> {
    cfg: &'a AnalysisConfig,
    kernel: &'k Kernel,
    block_id: u32,
    warp: u32,
    /// Mask of lanes that exist (thread id < block size).
    live: u32,
    /// `[lane][reg]`, abstract per-lane values.
    regs: Vec<Vec<AbsVal>>,
    preds: Vec<Vec<Option<bool>>>,
    sync_count: u64,
    sync_uncertain: bool,
    /// `false` during fixpoint stabilization walks: value state evolves but
    /// nothing is deposited in the sink (no sites, no diagnostics, no
    /// events, no barrier accounting) — only the final recorded pass counts.
    record: bool,
    /// `[lo, hi]` bound on how many times the currently-walked statement
    /// executes dynamically (product of enclosing trip intervals; `lo` drops
    /// to 0 inside a branch that may be skipped). Scales the per-site
    /// transaction bounds.
    mult: (u64, u64),
    sink: &'a mut Sink,
    events: &'a mut Vec<SharedEv>,
}

impl<'a, 'k> WarpInterp<'a, 'k> {
    fn new(
        kernel: &'k Kernel,
        cfg: &'a AnalysisConfig,
        block_id: u32,
        warp: u32,
        sink: &'a mut Sink,
        events: &'a mut Vec<SharedEv>,
    ) -> Self {
        let first = warp * WARP as u32;
        let live = if cfg.block >= first + WARP as u32 {
            u32::MAX
        } else {
            (1u32 << (cfg.block - first)) - 1
        };
        // Registers zero-init like `BlockCtx`, params bound to Reg(0..).
        let mut regs =
            vec![vec![AbsVal::Exact(0); kernel.n_regs.max(kernel.n_params) as usize]; WARP];
        for lane in &mut regs {
            for (p, v) in cfg.params.iter().enumerate() {
                lane[p] = AbsVal::Exact(*v);
            }
        }
        let preds = vec![vec![None; kernel.n_preds as usize]; WARP];
        WarpInterp {
            cfg,
            kernel,
            block_id,
            warp,
            live,
            regs,
            preds,
            sync_count: 0,
            sync_uncertain: false,
            record: true,
            mult: (1, 1),
            sink,
            events,
        }
    }

    fn lanes(&self, mask: u32) -> Vec<usize> {
        (0..WARP).filter(|l| mask & (1 << l) != 0).collect()
    }

    fn operand(&self, lane: usize, op: &Operand) -> AbsVal {
        match op {
            Operand::R(r) => self.regs[lane][r.0 as usize],
            Operand::ImmF(f) => AbsVal::Exact(f.to_bits()),
            Operand::ImmU(u) => AbsVal::Exact(*u),
        }
    }

    fn snapshot(&self) -> Snapshot {
        Snapshot {
            regs: self.regs.clone(),
            preds: self.preds.clone(),
        }
    }

    fn restore(&mut self, s: &Snapshot) {
        self.regs.clone_from(&s.regs);
        self.preds.clone_from(&s.preds);
    }

    /// Pointwise join of the current state with `s` (post-states of the two
    /// arms of a branch): registers via the lattice join, predicates kept
    /// only when both arms agree.
    fn join_with(&mut self, s: &Snapshot) {
        for l in 0..WARP {
            for r in 0..self.regs[l].len() {
                self.regs[l][r] = domain::join(self.regs[l][r], s.regs[l][r]);
            }
            for p in 0..self.preds[l].len() {
                if self.preds[l][p] != s.preds[l][p] {
                    self.preds[l][p] = None;
                }
            }
        }
    }

    /// Walk a statement list under a lane mask. `exact` means the mask and
    /// every iteration count on the path here were statically resolved.
    /// `Err(())` aborts the warp (mirrors a dynamic `DivergentBranch` fault).
    fn walk(&mut self, stmts: &[IStmt<'k>], mask: u32, exact: bool) -> Result<(), ()> {
        for s in stmts {
            match s {
                IStmt::I(idx, i) => self.exec(*idx, i, mask, exact),
                IStmt::Sync => self.sync(exact, mask),
                IStmt::If {
                    pred,
                    negate,
                    then,
                    els,
                } => {
                    let mut known = true;
                    let mut then_mask = 0u32;
                    for l in self.lanes(mask) {
                        match self.preds[l][pred.0 as usize] {
                            Some(v) => {
                                if v != *negate {
                                    then_mask |= 1 << l;
                                }
                            }
                            None => known = false,
                        }
                    }
                    if exact && known {
                        let else_mask = mask & !then_mask;
                        if then_mask != 0 {
                            self.walk(then, then_mask, true)?;
                        }
                        if else_mask != 0 {
                            self.walk(els, else_mask, true)?;
                        }
                    } else {
                        // Unknown predicate: each lane takes one arm or the
                        // other, so walk both from the same entry state and
                        // join the post-states. Sites inside may execute
                        // zero times — the lower execution bound drops to 0.
                        let saved_mult = self.mult;
                        self.mult.0 = 0;
                        let entry = self.snapshot();
                        let r_then = self.walk(then, mask, false);
                        let after_then = self.snapshot();
                        self.restore(&entry);
                        let r_els = self.walk(els, mask, false);
                        self.join_with(&after_then);
                        self.mult = saved_mult;
                        r_then?;
                        r_els?;
                    }
                }
                IStmt::For {
                    init: _,
                    var,
                    start,
                    end,
                    step,
                    body,
                    latch,
                } => {
                    self.run_for(*var, start, end, *step, body, *latch, mask, exact)?;
                }
                IStmt::While { body, backedge, .. } => {
                    // Data-dependent trip count and per-lane mask narrowing:
                    // the body is stabilized to an invariant state, then
                    // recorded once under the trip-count interval
                    // [1, trip_budget].
                    let budget = self.cfg.trip_budget.max(1);
                    if self.record {
                        self.sink.exact = false;
                        self.sink.push_once(
                            format!("while:{backedge}"),
                            Diagnostic {
                                severity: Severity::Info,
                                kind: LintKind::Unanalyzable,
                                site: site_at(
                                    &self.kernel.name,
                                    self.block_id,
                                    None,
                                    Some(*backedge),
                                ),
                                message: format!(
                                    "do/while trip count is data-dependent; the body is \
                                     analyzed under the trip-count interval [1, {budget}]"
                                ),
                                fixit: None,
                            },
                        );
                    }
                    self.fix_body(body, mask)?;
                    let saved_mult = self.mult;
                    self.mult = (saved_mult.0, saved_mult.1.saturating_mul(budget));
                    let r = self.walk(body, mask, false);
                    self.mult = saved_mult;
                    r?;
                }
            }
        }
        Ok(())
    }

    /// Iterate the loop body (without recording) until the value state is a
    /// post-fixpoint: `state ⊒ post(state)`. Joins for the first round,
    /// widening (straight to `Top` on growth) afterwards, with an all-`Top`
    /// fallback at [`FIX_ROUNDS`] as a termination backstop.
    fn fix_body(&mut self, body: &[IStmt<'k>], mask: u32) -> Result<(), ()> {
        let saved_record = self.record;
        self.record = false;
        let mut round = 0u32;
        loop {
            round += 1;
            if round > FIX_ROUNDS {
                for l in self.lanes(mask) {
                    for r in self.regs[l].iter_mut() {
                        *r = AbsVal::Top;
                    }
                    for p in self.preds[l].iter_mut() {
                        *p = None;
                    }
                }
                break;
            }
            let pre = self.snapshot();
            if self.walk(body, mask, false).is_err() {
                self.record = saved_record;
                return Err(());
            }
            let mut stable = true;
            for l in 0..WARP {
                for r in 0..self.regs[l].len() {
                    let old = pre.regs[l][r];
                    let mut merged = domain::join(old, self.regs[l][r]);
                    if round >= 2 {
                        merged = domain::widen(old, merged);
                    }
                    if merged != old {
                        stable = false;
                    }
                    self.regs[l][r] = merged;
                }
                for p in 0..self.preds[l].len() {
                    let old = pre.preds[l][p];
                    let merged = if old == self.preds[l][p] { old } else { None };
                    if merged != old {
                        stable = false;
                    }
                    self.preds[l][p] = merged;
                }
            }
            if stable {
                break;
            }
        }
        self.record = saved_record;
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn run_for(
        &mut self,
        var: Reg,
        start: &Operand,
        end: &Operand,
        step: u32,
        body: &[IStmt<'k>],
        latch: (u64, u64, u64),
        mask: u32,
        exact: bool,
    ) -> Result<(), ()> {
        let lanes = self.lanes(mask);
        if exact {
            for &l in &lanes {
                self.regs[l][var.0 as usize] = self.operand(l, start);
            }
        }
        let starts_exact = exact
            && lanes
                .iter()
                .all(|&l| self.regs[l][var.0 as usize].as_exact().is_some());
        if !starts_exact {
            return self.run_for_abstract(var, start, end, step, body, mask);
        }
        // The lowered form is bottom-tested: the body runs at least once.
        let mut iters: u64 = 0;
        loop {
            iters += 1;
            if iters > self.cfg.max_steps {
                self.sink.exact = false;
                let kernel = self.kernel.name.clone();
                let block = self.block_id;
                self.sink.push_once(
                    format!("budget:{}", latch.2),
                    Diagnostic {
                        severity: Severity::Info,
                        kind: LintKind::Unanalyzable,
                        site: site_at(&kernel, block, None, Some(latch.2)),
                        message: format!(
                            "loop exceeded the static interpretation budget of {} iterations; \
                             state after it is treated as unknown",
                            self.cfg.max_steps
                        ),
                        fixit: None,
                    },
                );
                return self.run_for_abstract(var, start, end, step, body, mask);
            }
            self.walk(body, mask, true)?;
            // Latch: add var, var, step; setp var < end; bra.
            for &l in &lanes {
                let r = &mut self.regs[l][var.0 as usize];
                if let Some(v) = r.as_exact() {
                    *r = AbsVal::Exact(v.wrapping_add(step));
                } else {
                    *r = domain::alu_abs(AluOp::IAdd, *r, AbsVal::Exact(step));
                }
            }
            let mut cont = 0u32;
            let mut known = true;
            for &l in &lanes {
                match (
                    self.regs[l][var.0 as usize].as_exact(),
                    self.operand(l, end).as_exact(),
                ) {
                    (Some(v), Some(e)) => {
                        if v < e {
                            cont |= 1 << l;
                        }
                    }
                    _ => known = false,
                }
            }
            if !known {
                // The bound (or the induction variable) was clobbered by
                // something unknown inside the body; fall back to bounds.
                return self.run_for_abstract(var, start, end, step, body, mask);
            }
            if cont == 0 {
                return Ok(());
            }
            if cont != mask {
                // The executor refuses non-uniform loop backedges.
                let lane = (cont ^ mask).trailing_zeros();
                self.sink.exact = false;
                let kernel = self.kernel.name.clone();
                let block = self.block_id;
                let thread = self.warp * WARP as u32 + lane;
                self.sink.push_once(
                    format!("divloop:{}", latch.2),
                    Diagnostic {
                        severity: Severity::Error,
                        kind: LintKind::DivergentLoopBranch,
                        site: site_at(&kernel, block, Some(thread), Some(latch.2)),
                        message: format!(
                            "loop backedge diverges within a warp (taken mask {cont:#010x} of \
                             active {mask:#010x}); the executor faults with DivergentBranch here"
                        ),
                        fixit: Some(
                            "make the trip count uniform across the warp (pad the bound to a \
                             multiple of the block size)"
                                .to_string(),
                        ),
                    },
                );
                return Err(());
            }
        }
    }

    /// A loop whose trip count could not be resolved exactly: derive a
    /// trip-count interval from the bounds' hulls (capped by the budget),
    /// give the induction variable its over-all-iterations hull, stabilize
    /// the body to an invariant, and record one pass scaled by the trip
    /// interval. The induction variable is unknown after the loop.
    fn run_for_abstract(
        &mut self,
        var: Reg,
        start: &Operand,
        end: &Operand,
        step: u32,
        body: &[IStmt<'k>],
        mask: u32,
    ) -> Result<(), ()> {
        let lanes = self.lanes(mask);
        let budget = self.cfg.trip_budget.max(1);
        // Hull of the per-lane start/end bounds across the warp.
        let hull = |wi: &Self, op: &Operand| {
            lanes
                .iter()
                .map(|&l| wi.operand(l, op))
                .fold(None, |acc: Option<AbsVal>, v| {
                    Some(match acc {
                        None => v,
                        Some(a) => domain::join(a, v),
                    })
                })
                .unwrap_or(AbsVal::Top)
        };
        let sb = hull(self, start);
        let eb = hull(self, end);
        let (trips, var_val) = match (sb.bounds(), eb.bounds()) {
            (Some((sl, sh)), Some((el, eh))) if step > 0 => {
                let th = trip(sl, eh, step).min(budget);
                let tl = trip(sh, el, step).min(th);
                // Entry value of the induction variable at iteration k:
                // start + (k-1)*step, which for k >= 2 passed the previous
                // latch test (so it is <= eh - 1) and is <= sh + (th-1)*step.
                let hi = if th >= 2 {
                    let later = (sh as u64 + (th - 1) * step as u64)
                        .min(eh.saturating_sub(1).max(sh) as u64);
                    sh.max(later.min(u32::MAX as u64) as u32)
                } else {
                    sh
                };
                let v = if body_writes(body, var) {
                    AbsVal::Top
                } else {
                    AbsVal::interval(sl, hi)
                };
                ((tl, th), v)
            }
            _ => ((1, budget), AbsVal::Top),
        };
        for &l in &lanes {
            self.regs[l][var.0 as usize] = var_val;
        }
        self.fix_body(body, mask)?;
        let saved_mult = self.mult;
        self.mult = (
            saved_mult.0.saturating_mul(trips.0),
            saved_mult.1.saturating_mul(trips.1),
        );
        let r = self.walk(body, mask, false);
        self.mult = saved_mult;
        r?;
        for &l in &lanes {
            self.regs[l][var.0 as usize] = AbsVal::Top;
        }
        Ok(())
    }

    fn sync(&mut self, exact: bool, mask: u32) {
        if !self.record {
            return;
        }
        if exact && mask == self.live {
            self.sync_count += 1;
            return;
        }
        self.sync_uncertain = true;
        let kernel = self.kernel.name.clone();
        let block = self.block_id;
        if exact {
            // Statically proven: part of the warp skips this barrier.
            self.sink.push_once(
                "divergent-sync:error".to_string(),
                Diagnostic {
                    severity: Severity::Error,
                    kind: LintKind::DivergentSync,
                    site: site_at(&kernel, block, None, None),
                    message: format!(
                        "bar.sync reached by a strict subset of the warp's lanes (mask \
                         {mask:#010x} of {:#010x}): threads that skip the barrier leave the \
                         block deadlocked",
                        self.live
                    ),
                    fixit: Some("hoist the Sync out of the conditional".to_string()),
                },
            );
        } else {
            self.sink.push_once(
                "divergent-sync:warning".to_string(),
                Diagnostic {
                    severity: Severity::Warning,
                    kind: LintKind::DivergentSync,
                    site: site_at(&kernel, block, None, None),
                    message: "bar.sync under data-dependent control flow: the analysis cannot \
                              prove every thread reaches it"
                        .to_string(),
                    fixit: None,
                },
            );
        }
    }

    fn exec(&mut self, idx: u64, i: &Instr, mask: u32, exact: bool) {
        let lanes = self.lanes(mask);
        match i {
            Instr::Mov { dst, src } => {
                for &l in &lanes {
                    self.regs[l][dst.0 as usize] = self.operand(l, src);
                }
            }
            Instr::Special { dst, sr } => {
                for &l in &lanes {
                    self.regs[l][dst.0 as usize] = AbsVal::Exact(match sr {
                        SpecialReg::TidX => self.warp * WARP as u32 + l as u32,
                        SpecialReg::CtaidX => self.block_id,
                        SpecialReg::NtidX => self.cfg.block,
                        SpecialReg::NctaidX => self.cfg.grid,
                    });
                }
            }
            Instr::Alu { op, dst, a, b } => {
                for &l in &lanes {
                    let v = domain::alu_abs(*op, self.operand(l, a), self.operand(l, b));
                    self.regs[l][dst.0 as usize] = v;
                }
            }
            Instr::Mad {
                float,
                dst,
                a,
                b,
                c,
            } => {
                for &l in &lanes {
                    let v = domain::mad_abs(
                        *float,
                        self.operand(l, a),
                        self.operand(l, b),
                        self.operand(l, c),
                    );
                    self.regs[l][dst.0 as usize] = v;
                }
            }
            Instr::Unary { op, dst, a } => {
                for &l in &lanes {
                    self.regs[l][dst.0 as usize] = domain::unary_abs(*op, self.operand(l, a));
                }
            }
            Instr::Setp { dst, cmp, a, b } => {
                for &l in &lanes {
                    let v = domain::compare_abs(*cmp, self.operand(l, a), self.operand(l, b));
                    self.preds[l][dst.0 as usize] = v;
                }
            }
            Instr::Ld {
                dsts,
                space,
                base,
                offset,
            } => {
                self.memory(idx, *space, true, *base, *offset, dsts.len(), mask, exact);
                for &l in &lanes {
                    for d in dsts {
                        self.regs[l][d.0 as usize] = AbsVal::Top;
                    }
                }
            }
            Instr::St {
                srcs,
                space,
                base,
                offset,
            } => {
                self.memory(idx, *space, false, *base, *offset, srcs.len(), mask, exact);
            }
            Instr::Clock { dst } => {
                for &l in &lanes {
                    self.regs[l][dst.0 as usize] = AbsVal::Top;
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn memory(
        &mut self,
        idx: u64,
        space: MemSpace,
        is_load: bool,
        base: Reg,
        offset: u32,
        words: usize,
        mask: u32,
        exact: bool,
    ) {
        if !self.record {
            return;
        }
        let width_bytes = 4 * words as u64;
        let kernel_name = self.kernel.name.clone();
        let block = self.block_id;
        self.sink
            .sites
            .entry(idx)
            .or_insert_with(|| SiteAcc::new(idx, space, is_load, words as u32));
        let mark_inexact = |sink: &mut Sink| {
            if let Some(site) = sink.sites.get_mut(&idx) {
                site.exact = false;
            }
            if matches!(space, MemSpace::Global | MemSpace::Texture) {
                sink.exact = false;
            }
        };

        if space == MemSpace::Texture && !is_load {
            self.sink.push_once(
                format!("tex-write:{idx}"),
                Diagnostic {
                    severity: Severity::Error,
                    kind: LintKind::MisalignedAccess,
                    site: site_at(&kernel_name, block, None, Some(idx)),
                    message: "store to read-only texture space (the executor faults with \
                              ReadOnlyWrite)"
                        .to_string(),
                    fixit: None,
                },
            );
            mark_inexact(self.sink);
            return;
        }

        // Per-lane abstract addresses. Exact bases compute the address
        // exactly as the machine does (u32 wrapping add, then widen);
        // interval bases carry `[lo, hi]` byte ranges unless the offset
        // could wrap, which loses the bound.
        let lanes = self.lanes(mask);
        let mut addrs: Vec<Option<u64>> = vec![None; WARP];
        let mut ranges: Vec<Option<(u64, u64)>> = vec![None; WARP];
        let mut any_unbounded = false;
        for &l in &lanes {
            match self.regs[l][base.0 as usize] {
                AbsVal::Exact(b) => {
                    let a = b.wrapping_add(offset) as u64;
                    addrs[l] = Some(a);
                    ranges[l] = Some((a, a));
                }
                AbsVal::Interval(lo, hi) => {
                    if hi as u64 + offset as u64 <= u32::MAX as u64 {
                        ranges[l] = Some((lo as u64 + offset as u64, hi as u64 + offset as u64));
                    } else {
                        any_unbounded = true;
                    }
                }
                AbsVal::Top => any_unbounded = true,
            }
        }

        // Feed the bounds certifier: the byte footprint this site can touch.
        if let Some(site) = self.sink.sites.get_mut(&idx) {
            site.addr_unbounded |= any_unbounded;
            for r in ranges.iter().flatten() {
                site.addr_lo = site.addr_lo.min(r.0);
                site.addr_hi = site.addr_hi.max(r.1 + width_bytes);
            }
        }

        // Feed the layout synthesizer: attribute the site to the kernel
        // parameter holding the base of the buffer it falls in — the
        // largest nonzero parameter value that does not exceed every
        // address this execution can touch (ties go to the lowest index).
        // An execution that cannot be bounded, or that disagrees with a
        // previous attribution, poisons the site to "mixed".
        if space == MemSpace::Global && !lanes.is_empty() {
            let attribution = if any_unbounded {
                None
            } else {
                ranges.iter().flatten().map(|r| r.0).min().and_then(|lo| {
                    self.cfg
                        .params
                        .iter()
                        .enumerate()
                        .filter(|&(_, &v)| v != 0 && (v as u64) <= lo)
                        .max_by_key(|&(p, &v)| (v, std::cmp::Reverse(p)))
                        .map(|(p, _)| p as u16)
                })
            };
            if let Some(site) = self.sink.sites.get_mut(&idx) {
                match (attribution, site.param_base) {
                    _ if site.param_mixed => {}
                    (Some(p), None) => site.param_base = Some(p),
                    (Some(p), Some(q)) if p == q => {}
                    _ => {
                        site.param_base = None;
                        site.param_mixed = true;
                    }
                }
            }
        }

        let all_exact = lanes.iter().all(|&l| addrs[l].is_some());
        if exact && all_exact {
            // ---- the affine fragment: bit-identical to the PR 2 path ----

            // Alignment / bounds, mirroring `exec::machine`'s fault checks.
            let mut faulted = false;
            for l in self.lanes(mask) {
                let Some(addr) = addrs[l] else { continue };
                let thread = self.warp * WARP as u32 + l as u32;
                match space {
                    MemSpace::Global | MemSpace::Texture => {
                        if !addr.is_multiple_of(width_bytes) {
                            faulted = true;
                            self.sink.push_once(
                                format!("misaligned:{idx}"),
                                Diagnostic {
                                    severity: Severity::Error,
                                    kind: LintKind::MisalignedAccess,
                                    site: site_at(&kernel_name, block, Some(thread), Some(idx)),
                                    message: format!(
                                        "{}-byte {} at address {addr:#x} is not naturally \
                                         aligned; the executor faults with Misaligned",
                                        width_bytes,
                                        if is_load { "load" } else { "store" }
                                    ),
                                    fixit: None,
                                },
                            );
                        }
                    }
                    MemSpace::Shared => {
                        if !addr.is_multiple_of(4) {
                            faulted = true;
                            self.sink.push_once(
                                format!("misaligned:{idx}"),
                                Diagnostic {
                                    severity: Severity::Error,
                                    kind: LintKind::MisalignedAccess,
                                    site: site_at(&kernel_name, block, Some(thread), Some(idx)),
                                    message: format!(
                                        "shared {} at address {addr:#x} is not word-aligned",
                                        if is_load { "load" } else { "store" }
                                    ),
                                    fixit: None,
                                },
                            );
                        } else if addr + width_bytes > self.kernel.smem_bytes as u64 {
                            faulted = true;
                            self.sink.push_once(
                                format!("smem-oob:{idx}"),
                                Diagnostic {
                                    severity: Severity::Error,
                                    kind: LintKind::OutOfBoundsShared,
                                    site: site_at(&kernel_name, block, Some(thread), Some(idx)),
                                    message: format!(
                                        "shared {} of {width_bytes} bytes at address {addr:#x} \
                                         overruns the {}-byte static allocation",
                                        if is_load { "load" } else { "store" },
                                        self.kernel.smem_bytes
                                    ),
                                    fixit: None,
                                },
                            );
                        }
                    }
                }
            }
            if faulted {
                if let Some(site) = self.sink.sites.get_mut(&idx) {
                    site.exact = false;
                    site.misaligned = true;
                }
                self.sink.exact = false;
                return;
            }

            match space {
                MemSpace::Global => {
                    let Some(width) = AccessWidth::from_bytes(width_bytes as u32) else {
                        mark_inexact(self.sink);
                        return;
                    };
                    // Track the adjacent-lane stride (for the fix-it text).
                    let mut stride_here: Option<i64> = None;
                    let mut stride_mixed = false;
                    for l in 0..WARP - 1 {
                        if let (Some(a), Some(b)) = (addrs[l], addrs[l + 1]) {
                            let d = b as i64 - a as i64;
                            match stride_here {
                                None => stride_here = Some(d),
                                Some(p) if p != d => stride_mixed = true,
                                _ => {}
                            }
                        }
                    }
                    let half = self.cfg.device.half_warp as usize;
                    let driver = self.cfg.driver;
                    if let Some(site) = self.sink.sites.get_mut(&idx) {
                        for chunk in addrs.chunks(half) {
                            if chunk.iter().all(Option::is_none) {
                                continue;
                            }
                            let res = coalesce_half_warp(driver, chunk, width);
                            let tx = res.transactions.len() as u64;
                            site.transactions += tx;
                            site.tx_lo += tx;
                            site.tx_hi += tx;
                            site.bus_bytes +=
                                res.transactions.iter().map(|t| t.bytes as u64).sum::<u64>();
                            site.ideal += if width == AccessWidth::W16 { 2 } else { 1 };
                            site.half_warps += 1;
                            site.half_warps_hi += 1;
                        }
                        site.stride = match (site.stride, stride_here, stride_mixed) {
                            (_, _, true) | (StrideTrack::Mixed, _, _) => StrideTrack::Mixed,
                            (s, None, false) => s,
                            (StrideTrack::Unset, Some(d), false) => StrideTrack::Const(d),
                            (StrideTrack::Const(p), Some(d), false) => {
                                if p == d {
                                    StrideTrack::Const(p)
                                } else {
                                    StrideTrack::Mixed
                                }
                            }
                        };
                    }
                }
                MemSpace::Texture => {
                    // The texture path bypasses the coalescer; its transaction
                    // count depends on dynamic cache state. Excluded from the
                    // prediction (summarized as an info diagnostic later).
                    mark_inexact(self.sink);
                }
                MemSpace::Shared => {
                    let half = self.cfg.device.half_warp as usize;
                    let banks = self.cfg.device.smem_banks;
                    let mut degree = 1u32;
                    let mut issues = 0u64;
                    for chunk in addrs.chunks(half) {
                        if chunk.iter().all(Option::is_none) {
                            continue;
                        }
                        issues += 1;
                        for phase in 0..words as u64 {
                            let phase_addrs: Vec<Option<u64>> =
                                chunk.iter().map(|a| a.map(|a| a + 4 * phase)).collect();
                            degree = degree.max(conflict_degree(&phase_addrs, banks));
                        }
                    }
                    if let Some(site) = self.sink.sites.get_mut(&idx) {
                        site.bank_degree = site.bank_degree.max(degree);
                        site.half_warps += issues;
                        site.half_warps_hi += issues;
                    }
                    for l in self.lanes(mask) {
                        let Some(addr) = addrs[l] else { continue };
                        for w in 0..words as u64 {
                            self.events.push(SharedEv {
                                phase: self.sync_count,
                                word: addr / 4 + w,
                                thread: self.warp * WARP as u32 + l as u32,
                                is_write: !is_load,
                                instr: idx,
                            });
                        }
                    }
                }
            }
            return;
        }

        // ---- the abstract fragment: bounds instead of exact counts ----
        // The site is inexact (excluded from `predicted_transactions`), but
        // each half-warp issue still moves between 1 transaction (perfectly
        // coalesced) and one per active lane (fully decayed) under every
        // driver model, and the issue count is scaled by the enclosing
        // trip-count interval.
        mark_inexact(self.sink);
        let half = self.cfg.device.half_warp as usize;
        match space {
            MemSpace::Global => {
                let Some(width) = AccessWidth::from_bytes(width_bytes as u32) else {
                    if let Some(site) = self.sink.sites.get_mut(&idx) {
                        site.addr_unbounded = true;
                    }
                    return;
                };
                let driver = self.cfg.driver;
                let ideal: u64 = if width == AccessWidth::W16 { 2 } else { 1 };
                let mut lo_sum = 0u64;
                let mut hi_sum = 0u64;
                let mut issues = 0u64;
                for c in 0..WARP.div_ceil(half) {
                    let chunk_lanes: Vec<usize> =
                        lanes.iter().copied().filter(|&l| l / half == c).collect();
                    if chunk_lanes.is_empty() {
                        continue;
                    }
                    issues += 1;
                    lo_sum += 1;
                    let chunk = &addrs[c * half..(c * half + half).min(WARP)];
                    let aligned_exact = chunk_lanes
                        .iter()
                        .all(|&l| addrs[l].is_some_and(|a| a.is_multiple_of(width_bytes)));
                    hi_sum += if aligned_exact {
                        // Every lane address is known and in-spec: the
                        // oracle's count is itself the worst case (shrinking
                        // the active set never adds transactions).
                        coalesce_half_warp(driver, chunk, width).transactions.len() as u64
                    } else {
                        // Fully decayed: one transaction per active lane
                        // (but never below the coalesced-issue cost).
                        (chunk_lanes.len() as u64).max(ideal)
                    };
                }
                if let Some(site) = self.sink.sites.get_mut(&idx) {
                    site.tx_lo = site
                        .tx_lo
                        .saturating_add(lo_sum.saturating_mul(self.mult.0));
                    site.tx_hi = site
                        .tx_hi
                        .saturating_add(hi_sum.saturating_mul(self.mult.1));
                    site.half_warps_hi = site
                        .half_warps_hi
                        .saturating_add(issues.saturating_mul(self.mult.1));
                }
            }
            MemSpace::Texture => {}
            MemSpace::Shared => {
                let banks = self.cfg.device.smem_banks;
                let mut degree = 1u32;
                let mut issues = 0u64;
                for c in 0..WARP.div_ceil(half) {
                    let chunk_lanes: Vec<usize> =
                        lanes.iter().copied().filter(|&l| l / half == c).collect();
                    if chunk_lanes.is_empty() {
                        continue;
                    }
                    issues += 1;
                    if chunk_lanes.iter().all(|&l| addrs[l].is_some()) {
                        let chunk = &addrs[c * half..(c * half + half).min(WARP)];
                        for phase in 0..words as u64 {
                            let phase_addrs: Vec<Option<u64>> =
                                chunk.iter().map(|a| a.map(|a| a + 4 * phase)).collect();
                            degree = degree.max(conflict_degree(&phase_addrs, banks));
                        }
                    }
                }
                if let Some(site) = self.sink.sites.get_mut(&idx) {
                    site.bank_degree = site.bank_degree.max(degree);
                    site.half_warps_hi = site
                        .half_warps_hi
                        .saturating_add(issues.saturating_mul(self.mult.1));
                }
            }
        }
    }
}

/// Exact bit-level ALU semantics, shared with [`super::verify`]'s constant
/// folder so symbolic proofs rest on the same arithmetic the executors use.
pub(crate) fn alu(op: AluOp, x: u32, y: u32) -> u32 {
    let (fx, fy) = (f32::from_bits(x), f32::from_bits(y));
    match op {
        AluOp::FAdd => (fx + fy).to_bits(),
        AluOp::FSub => (fx - fy).to_bits(),
        AluOp::FMul => (fx * fy).to_bits(),
        AluOp::FMin => fx.min(fy).to_bits(),
        AluOp::FMax => fx.max(fy).to_bits(),
        AluOp::IAdd => x.wrapping_add(y),
        AluOp::ISub => x.wrapping_sub(y),
        AluOp::IMul => x.wrapping_mul(y),
        AluOp::IShl => x.wrapping_shl(y),
        AluOp::IAnd => x & y,
        AluOp::IMin => x.min(y),
    }
}

/// Exact `mad` semantics (f32 fused form or wrapping u32), as in
/// `exec::machine`.
pub(crate) fn mad(float: bool, a: u32, b: u32, c: u32) -> u32 {
    if float {
        (f32::from_bits(a) * f32::from_bits(b) + f32::from_bits(c)).to_bits()
    } else {
        a.wrapping_mul(b).wrapping_add(c)
    }
}

/// Exact unary-op semantics, as in `exec::machine`.
pub(crate) fn unary(op: UnaryOp, x: u32) -> u32 {
    match op {
        UnaryOp::FRsqrt => (1.0 / f32::from_bits(x).sqrt()).to_bits(),
        UnaryOp::FNeg => (-f32::from_bits(x)).to_bits(),
        UnaryOp::U2F => (x as f32).to_bits(),
        UnaryOp::F2U => f32::from_bits(x) as u32,
    }
}

/// Exact predicate-compare semantics, as in `exec::machine`.
pub(crate) fn compare(op: CmpOp, x: u32, y: u32) -> bool {
    match op {
        CmpOp::ULt => x < y,
        CmpOp::UGe => x >= y,
        CmpOp::UEq => x == y,
        CmpOp::UNe => x != y,
        CmpOp::FLt => f32::from_bits(x) < f32::from_bits(y),
    }
}
