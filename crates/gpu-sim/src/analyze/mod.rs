//! Static kernel analysis: IR-level lints for the paper's failure modes.
//!
//! `analyze` predicts — **without executing the kernel** — the memory
//! behaviour the dynamic engines measure, and flags the bug classes the rest
//! of the workspace models:
//!
//! * **Coalescing** ([`LintKind::UncoalescedAccess`]): per-lane addresses are
//!   derived by abstract interpretation (exact, bit-level — see
//!   [`interp`](self)), fed through the same
//!   [`coalesce_half_warp`](crate::coalesce::coalesce_half_warp) oracle the
//!   timed executor uses, and compared against the ideal transaction count.
//!   The paper's 28-byte record (Sec. III) is recognised by its lane stride
//!   and the fix-it points at `layout_advisor`'s 128-bit split.
//! * **Shared-memory bank conflicts** ([`LintKind::BankConflict`]): static
//!   conflict degree via [`conflict_degree`](crate::banks::conflict_degree).
//! * **Barrier hygiene** ([`LintKind::SharedRace`],
//!   [`LintKind::DivergentSync`], [`LintKind::BarrierDeadlock`],
//!   [`LintKind::DivergentLoopBranch`]): cross-thread shared accesses are
//!   tracked per barrier interval; syncs under divergent control flow and
//!   non-uniform loop backedges reuse the fault taxonomy of [`crate::fault`].
//! * **Dataflow** ([`LintKind::UseBeforeDef`], [`LintKind::DeadCode`],
//!   [`LintKind::UnhoistedInvariant`]): def-before-use, dead stores, and a
//!   diff against [`passes::licm`](crate::ir::passes::licm) that counts the
//!   invariant instructions a loop recomputes.
//! * **Occupancy** ([`LintKind::RegisterPressure`]): register demand from
//!   [`register_demand`](crate::ir::regalloc::register_demand) runs through
//!   the occupancy calculator; when registers are the limiter and freeing one
//!   or two would admit another block, the paper's 17→16 trick is suggested.
//!
//! Diagnostic coordinates (`kernel`/`block`/`thread`/`instruction`) share
//! [`FaultSite`] with the device-fault sanitizer, and instruction indices are
//! the stable pre-order numbering of [`InstrIndexer`] — the same numbers
//! `ir::pretty` prints in a disassembly.
//!
//! The load-bearing property (tested in `tests/analyze_proptests.rs`): for
//! kernels whose addresses resolve statically ([`AnalysisReport::exact`]),
//! [`AnalysisReport::predicted_transactions`] equals the dynamic coalescer's
//! transaction count **exactly**, under every [`DriverModel`].

mod domain;
mod interp;

pub mod cost;
pub mod synth;
pub mod verify;

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::device::DeviceConfig;
use crate::driver::DriverModel;
use crate::fault::FaultSite;
use crate::ir::regalloc::register_demand;
use crate::ir::{count, passes, Instr, InstrIndexer, Kernel, MemSpace, Operand, Stmt};
use crate::occupancy::{occupancy, regs_per_block, Limiter, Occupancy};
use interp::{IStmt, Sink, SiteAcc, StrideTrack};

/// How serious a finding is. `Error`-level findings make `kernel-lint` exit
/// nonzero and correspond to launches the dynamic engines would fault on or
/// results the paper calls out as pathological.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Informational: a modelled cost or an analysis limitation.
    Info,
    /// Probable performance problem; the kernel still runs correctly.
    Warning,
    /// A fault or a pathology the paper's optimisations exist to remove.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The lint classes the analyzer reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LintKind {
    /// A global access issuing more transactions than its ideal.
    UncoalescedAccess,
    /// An access the executor would fault on with `Misaligned`.
    MisalignedAccess,
    /// A shared access overrunning the static allocation.
    OutOfBoundsShared,
    /// A shared access serializing across banks.
    BankConflict,
    /// A cross-thread shared write/access pair with no barrier between.
    SharedRace,
    /// A `Sync` not provably reached by every thread.
    DivergentSync,
    /// A loop backedge that diverges within a warp (executor fault).
    DivergentLoopBranch,
    /// Warps of one block retiring different barrier counts.
    BarrierDeadlock,
    /// A register read that is never written (zero-init default).
    UseBeforeDef,
    /// A defined value that is never read.
    DeadCode,
    /// Loop-invariant instructions recomputed every iteration.
    UnhoistedInvariant,
    /// Registers are the occupancy limiter and freeing a few would help.
    RegisterPressure,
    /// A loop whose trip count is not a launch constant.
    UnboundedLoop,
    /// An access through the (dynamically cached) texture path.
    TextureDependence,
    /// An access whose interval address range is not provably inside a
    /// declared buffer extent (the static bounds certifier's finding).
    PossibleOutOfBounds,
    /// Something the static analysis cannot resolve.
    Unanalyzable,
}

impl LintKind {
    /// Stable kebab-case identifier (used in `--json` output and CI).
    pub fn name(&self) -> &'static str {
        match self {
            LintKind::UncoalescedAccess => "uncoalesced-access",
            LintKind::MisalignedAccess => "misaligned-access",
            LintKind::OutOfBoundsShared => "out-of-bounds-shared",
            LintKind::BankConflict => "bank-conflict",
            LintKind::SharedRace => "shared-race",
            LintKind::DivergentSync => "divergent-sync",
            LintKind::DivergentLoopBranch => "divergent-loop-branch",
            LintKind::BarrierDeadlock => "barrier-deadlock",
            LintKind::UseBeforeDef => "use-before-def",
            LintKind::DeadCode => "dead-code",
            LintKind::UnhoistedInvariant => "unhoisted-invariant",
            LintKind::RegisterPressure => "register-pressure",
            LintKind::UnboundedLoop => "unbounded-loop",
            LintKind::TextureDependence => "texture-dependence",
            LintKind::PossibleOutOfBounds => "possible-out-of-bounds",
            LintKind::Unanalyzable => "unanalyzable",
        }
    }
}

/// One finding.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Diagnostic {
    /// How serious it is.
    pub severity: Severity,
    /// Which lint fired.
    pub kind: LintKind,
    /// Where (same coordinate shape as a device fault).
    pub site: FaultSite,
    /// Human-readable statement of the problem.
    pub message: String,
    /// A concrete suggested fix, when the analyzer has one.
    pub fixit: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}",
            self.severity,
            self.kind.name(),
            self.message
        )
    }
}

/// Static facts about one memory instruction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccessSummary {
    /// Stable instruction index (matches `ir::pretty` output).
    pub instruction: u64,
    /// Address space.
    pub space: MemSpace,
    /// Load or store.
    pub is_load: bool,
    /// Access width in bytes per lane.
    pub width_bytes: u32,
    /// Every execution had statically known, in-spec addresses.
    pub exact: bool,
    /// Predicted memory transactions over the whole launch (global only).
    pub transactions: u64,
    /// Transactions a perfectly coalesced pattern would need.
    pub ideal_transactions: u64,
    /// Predicted bytes moved over the bus.
    pub bus_bytes: u64,
    /// Half-warp issues with at least one active lane.
    pub half_warp_accesses: u64,
    /// Constant byte stride between adjacent lanes, when one exists.
    pub lane_stride: Option<i64>,
    /// Worst static bank-conflict degree (shared only; 1 = conflict-free).
    pub bank_degree: u32,
    /// Best-case transaction bound (equals `transactions` when exact).
    pub transactions_lo: u64,
    /// Worst-case transaction bound under the trip-count intervals.
    pub transactions_hi: u64,
    /// Worst-case half-warp issue bound (trip-interval scaled).
    pub half_warp_accesses_hi: u64,
    /// Interval byte footprint `[lo, hi)` this site can touch, when bounded.
    pub addr_range: Option<(u64, u64)>,
    /// Kernel parameter holding the base address of the buffer this site
    /// accesses (global sites only), when every execution attributes the
    /// site to the same single parameter. The hook the layout synthesizer
    /// ([`synth`]) uses to group sites into per-buffer access summaries.
    pub buffer_param: Option<u16>,
}

/// Everything the analyzer learned about one kernel under one launch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Kernel name.
    pub kernel: String,
    /// Driver model the coalescing prediction targeted.
    pub driver: DriverModel,
    /// When `true`, [`Self::predicted_transactions`] covers every dynamic
    /// global transaction exactly; when `false`, some access was data-
    /// dependent (or texture-path) and the prediction is a lower bound.
    pub exact: bool,
    /// Predicted global-memory transactions for the whole launch.
    pub predicted_transactions: u64,
    /// `[best, worst]` global-transaction bounds for the whole launch.
    /// Collapses to `(predicted, predicted)` when the report is exact;
    /// non-affine sites widen it by their interval transaction bounds
    /// (texture-path traffic stays excluded from both ends).
    pub transaction_bounds: (u64, u64),
    /// Register demand per thread (`ir::regalloc`).
    pub regs_per_thread: u16,
    /// Occupancy at the analyzed launch shape, when schedulable.
    pub occupancy: Option<Occupancy>,
    /// Findings, most severe first.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-site access facts, by instruction index.
    pub accesses: Vec<AccessSummary>,
}

impl AnalysisReport {
    /// The most severe finding, if any.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Whether any error-severity finding exists (the CI gate).
    pub fn has_errors(&self) -> bool {
        self.max_severity() == Some(Severity::Error)
    }

    /// Render the report for humans (the `kernel-lint` default output).
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "kernel `{}` [{}]: {} predicted global transactions{}, {} regs/thread",
            self.kernel,
            self.driver.label(),
            self.predicted_transactions,
            if self.exact {
                " (exact)"
            } else {
                " (partial: data-dependent accesses)"
            },
            self.regs_per_thread,
        );
        if !self.exact && self.transaction_bounds.1 > self.transaction_bounds.0 {
            let _ = writeln!(
                s,
                "  transaction bounds: [{}, {}]",
                self.transaction_bounds.0, self.transaction_bounds.1
            );
        }
        if let Some(o) = &self.occupancy {
            let _ = writeln!(
                s,
                "  occupancy: {} warps of {} ({:.0}%), limited by {:?}",
                o.active_warps,
                o.max_warps,
                o.percent(),
                o.limiter
            );
        }
        if self.diagnostics.is_empty() {
            let _ = writeln!(s, "  clean: no findings");
        }
        for d in &self.diagnostics {
            let _ = writeln!(s, "  {d}");
            let _ = writeln!(s, "      at {}", d.site);
            if let Some(fx) = &d.fixit {
                let _ = writeln!(s, "      fix: {fx}");
            }
        }
        s
    }
}

/// A declared device-buffer extent the bounds certifier checks global and
/// texture accesses against: bytes `[base, base + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferExtent {
    /// First byte of the buffer.
    pub base: u64,
    /// Size in bytes.
    pub len: u64,
}

impl BufferExtent {
    /// Does `[lo, hi)` fit entirely inside this buffer?
    pub fn covers(&self, lo: u64, hi: u64) -> bool {
        self.base <= lo && hi <= self.base + self.len
    }
}

/// Launch shape and device context to analyze under.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Device the occupancy/bank/coalescing rules come from.
    pub device: DeviceConfig,
    /// Coalescing protocol revision.
    pub driver: DriverModel,
    /// Blocks in the launch.
    pub grid: u32,
    /// Threads per block.
    pub block: u32,
    /// Launch parameter values (bound to `Reg(0..n_params)`).
    pub params: Vec<u32>,
    /// Per-loop iteration budget before the interpreter gives up.
    pub max_steps: u64,
    /// Trip-count cap for data-dependent loops: the upper end of the
    /// `[1, trip_budget]` interval the abstract interpreter analyzes a
    /// `While` (or unresolvable `For`) under. Sound only if the loop really
    /// terminates within the budget — pass a structural bound (e.g. the
    /// Barnes–Hut traversal's node count) when one exists.
    pub trip_budget: u64,
    /// Declared device-buffer extents. When non-empty, every global/texture
    /// access must be provably inside one of them or
    /// [`LintKind::PossibleOutOfBounds`] fires. Empty = certifier off.
    pub buffers: Vec<BufferExtent>,
}

impl AnalysisConfig {
    /// Defaults: GeForce 8800 GTX, CUDA 1.0 coalescing, 4096-iteration
    /// loop budget, no declared buffer extents.
    pub fn new(grid: u32, block: u32, params: Vec<u32>) -> AnalysisConfig {
        AnalysisConfig {
            device: DeviceConfig::g8800gtx(),
            driver: DriverModel::Cuda10,
            grid,
            block,
            params,
            max_steps: 4096,
            trip_budget: 4096,
            buffers: Vec::new(),
        }
    }

    /// Use a different coalescing protocol revision.
    pub fn with_driver(mut self, driver: DriverModel) -> AnalysisConfig {
        self.driver = driver;
        self
    }

    /// Use a different device.
    pub fn with_device(mut self, device: DeviceConfig) -> AnalysisConfig {
        self.device = device;
        self
    }

    /// Cap data-dependent trip counts at `budget` (must be a true bound on
    /// the dynamic trip count for the transaction bounds to be sound).
    pub fn with_trip_budget(mut self, budget: u64) -> AnalysisConfig {
        self.trip_budget = budget.max(1);
        self
    }

    /// Declare buffer extents and switch the bounds certifier on.
    pub fn with_buffers(mut self, buffers: Vec<BufferExtent>) -> AnalysisConfig {
        self.buffers = buffers;
        self
    }
}

/// Run every static pass over a kernel and assemble the report.
pub fn analyze_kernel(kernel: &Kernel, cfg: &AnalysisConfig) -> AnalysisReport {
    let mut report = AnalysisReport {
        kernel: kernel.name.clone(),
        driver: cfg.driver,
        exact: true,
        predicted_transactions: 0,
        transaction_bounds: (0, 0),
        regs_per_thread: 0,
        occupancy: None,
        diagnostics: Vec::new(),
        accesses: Vec::new(),
    };

    // Launch validation first: everything downstream assumes a well-formed
    // launch (and the occupancy calculator asserts on impossible ones).
    let bad_launch = |msg: String, report: &mut AnalysisReport| {
        report.exact = false;
        report.diagnostics.push(Diagnostic {
            severity: Severity::Error,
            kind: LintKind::Unanalyzable,
            site: FaultSite {
                kernel: Some(kernel.name.clone()),
                ..FaultSite::default()
            },
            message: msg,
            fixit: None,
        });
    };
    if cfg.grid == 0 || cfg.block == 0 {
        bad_launch(
            format!("empty launch: grid {} x block {}", cfg.grid, cfg.block),
            &mut report,
        );
        return report;
    }
    if cfg.block > cfg.device.max_threads_per_block {
        bad_launch(
            format!(
                "block of {} threads exceeds the device limit of {}",
                cfg.block, cfg.device.max_threads_per_block
            ),
            &mut report,
        );
        return report;
    }
    if cfg.params.len() != kernel.n_params as usize {
        bad_launch(
            format!(
                "kernel takes {} parameters, launch supplied {}",
                kernel.n_params,
                cfg.params.len()
            ),
            &mut report,
        );
        return report;
    }

    let mut ix = InstrIndexer::new();
    let tree = interp::index_stmts(&kernel.body, &mut ix);

    let mut sink = Sink::new();
    interp::interpret(kernel, &tree, cfg, &mut sink);
    report.exact = sink.exact;
    let mut diags = sink.diags;

    def_use_pass(kernel, &tree, &mut diags);
    licm_pass(kernel, &tree, &mut diags);
    trip_count_pass(kernel, cfg, &mut diags);
    summarize_sites(kernel, &sink.sites, &mut report, &mut diags);
    bounds_pass(kernel, cfg, &sink.sites, &mut diags);
    pressure_pass(kernel, cfg, &mut report, &mut diags);

    // Deterministic total order so `--json` output is byte-stable across
    // runs: severity (most severe first), then kernel, then instruction
    // `[idx]` (site-less findings last), then lint kind, then message.
    diags.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.site.kernel.cmp(&b.site.kernel))
            .then(
                a.site
                    .instruction
                    .unwrap_or(u64::MAX)
                    .cmp(&b.site.instruction.unwrap_or(u64::MAX)),
            )
            .then(a.kind.name().cmp(b.kind.name()))
            .then(a.message.cmp(&b.message))
    });
    report.diagnostics = diags;
    report
}

/// Def-before-use and dead-store analysis over the indexed tree.
fn def_use_pass(kernel: &Kernel, tree: &[IStmt<'_>], diags: &mut Vec<Diagnostic>) {
    struct DefUse {
        used_regs: HashSet<u16>,
        def_regs: HashSet<u16>,
        used_preds: HashSet<u16>,
        def_preds: HashSet<u16>,
        /// (index, instr) of every plain instruction.
        sites: Vec<(u64, Vec<u16>, bool)>,
        first_use: HashMap<u16, u64>,
    }
    fn collect(stmts: &[IStmt<'_>], du: &mut DefUse) {
        for s in stmts {
            match s {
                IStmt::I(idx, i) => {
                    for r in i.uses() {
                        du.used_regs.insert(r.0);
                        du.first_use.entry(r.0).or_insert(*idx);
                    }
                    let defs: Vec<u16> = i.defs().iter().map(|r| r.0).collect();
                    for &r in &defs {
                        du.def_regs.insert(r);
                    }
                    if let Instr::Setp { dst, .. } = i {
                        du.def_preds.insert(dst.0);
                    }
                    du.sites.push((*idx, defs, matches!(i, Instr::Ld { .. })));
                }
                IStmt::For {
                    var,
                    start,
                    end,
                    body,
                    init,
                    ..
                } => {
                    // The lowered latch both defines and reads the induction
                    // variable; bound operands are read every iteration.
                    du.def_regs.insert(var.0);
                    du.used_regs.insert(var.0);
                    for o in [*start, *end] {
                        if let Operand::R(r) = o {
                            du.used_regs.insert(r.0);
                            du.first_use.entry(r.0).or_insert(*init);
                        }
                    }
                    collect(body, du);
                }
                IStmt::If {
                    pred, then, els, ..
                } => {
                    du.used_preds.insert(pred.0);
                    collect(then, du);
                    collect(els, du);
                }
                IStmt::While { pred, body, .. } => {
                    du.used_preds.insert(pred.0);
                    collect(body, du);
                }
                IStmt::Sync => {}
            }
        }
    }
    let mut du = DefUse {
        used_regs: HashSet::new(),
        def_regs: HashSet::new(),
        used_preds: HashSet::new(),
        def_preds: HashSet::new(),
        sites: Vec::new(),
        first_use: HashMap::new(),
    };
    collect(tree, &mut du);

    for (idx, defs, is_load) in &du.sites {
        if !defs.is_empty() && defs.iter().all(|r| !du.used_regs.contains(r)) {
            let regs: Vec<String> = defs.iter().map(|r| format!("%r{r}")).collect();
            diags.push(Diagnostic {
                severity: Severity::Warning,
                kind: LintKind::DeadCode,
                site: FaultSite {
                    kernel: Some(kernel.name.clone()),
                    instruction: Some(*idx),
                    ..FaultSite::default()
                },
                message: if *is_load {
                    format!(
                        "loaded value{} {} never read (dead load)",
                        plural(defs.len()),
                        regs.join(", ")
                    )
                } else {
                    format!("value {} is never read (dead store)", regs.join(", "))
                },
                fixit: Some("delete the instruction, or narrow the read plan".to_string()),
            });
        }
    }
    let mut undef: Vec<u16> = du
        .used_regs
        .iter()
        .filter(|&&r| r >= kernel.n_params && !du.def_regs.contains(&r))
        .copied()
        .collect();
    undef.sort_unstable();
    for r in undef {
        diags.push(Diagnostic {
            severity: Severity::Error,
            kind: LintKind::UseBeforeDef,
            site: FaultSite {
                kernel: Some(kernel.name.clone()),
                instruction: du.first_use.get(&r).copied(),
                ..FaultSite::default()
            },
            message: format!(
                "%r{r} is read but never written (it would hold the zero-init default)"
            ),
            fixit: None,
        });
    }
    let mut undef_preds: Vec<u16> = du
        .used_preds
        .iter()
        .filter(|p| !du.def_preds.contains(p))
        .copied()
        .collect();
    undef_preds.sort_unstable();
    for p in undef_preds {
        diags.push(Diagnostic {
            severity: Severity::Error,
            kind: LintKind::UseBeforeDef,
            site: FaultSite {
                kernel: Some(kernel.name.clone()),
                ..FaultSite::default()
            },
            message: format!("predicate %p{p} is branched on but never set by a setp"),
            fixit: None,
        });
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Diff against `passes::licm` to count invariant instructions each loop
/// recomputes, attributing every hoist to its innermost loop.
fn licm_pass(kernel: &Kernel, tree: &[IStmt<'_>], diags: &mut Vec<Diagnostic>) {
    fn collect_i(
        stmts: &[IStmt<'_>],
        parent: Option<usize>,
        out: &mut Vec<(u64, u64, Option<usize>)>,
    ) -> u64 {
        let mut n = 0;
        for s in stmts {
            match s {
                IStmt::I(..) => n += 1,
                IStmt::For { init, body, .. } => {
                    let slot = out.len();
                    out.push((*init, 0, parent));
                    let c = collect_i(body, Some(slot), out);
                    out[slot].1 = c;
                    n += c;
                }
                IStmt::If { then, els, .. } => {
                    n += collect_i(then, parent, out);
                    n += collect_i(els, parent, out);
                }
                IStmt::While { body, .. } => n += collect_i(body, parent, out),
                IStmt::Sync => {}
            }
        }
        n
    }
    fn collect_s(
        stmts: &[Stmt],
        parent: Option<usize>,
        out: &mut Vec<(u64, Option<usize>)>,
    ) -> u64 {
        let mut n = 0;
        for s in stmts {
            match s {
                Stmt::I(_) => n += 1,
                Stmt::For { body, .. } => {
                    let slot = out.len();
                    out.push((0, parent));
                    let c = collect_s(body, Some(slot), out);
                    out[slot].0 = c;
                    n += c;
                }
                Stmt::If { then, els, .. } => {
                    n += collect_s(then, parent, out);
                    n += collect_s(els, parent, out);
                }
                Stmt::While { body, .. } => n += collect_s(body, parent, out),
                Stmt::Sync => {}
            }
        }
        n
    }
    let hoisted = passes::licm(kernel);
    let mut orig: Vec<(u64, u64, Option<usize>)> = Vec::new();
    collect_i(tree, None, &mut orig);
    let mut hst: Vec<(u64, Option<usize>)> = Vec::new();
    collect_s(&hoisted.body, None, &mut hst);
    if orig.len() != hst.len() {
        return; // licm changed the loop structure; nothing safe to report
    }
    let diffs: Vec<i64> = (0..orig.len())
        .map(|i| orig[i].1 as i64 - hst[i].0 as i64)
        .collect();
    let mut child_diff = vec![0i64; orig.len()];
    for i in 0..orig.len() {
        if let Some(p) = orig[i].2 {
            child_diff[p] += diffs[i];
        }
    }
    for i in 0..orig.len() {
        let own = diffs[i] - child_diff[i];
        if own > 0 {
            diags.push(Diagnostic {
                severity: Severity::Warning,
                kind: LintKind::UnhoistedInvariant,
                site: FaultSite {
                    kernel: Some(kernel.name.clone()),
                    instruction: Some(orig[i].0),
                    ..FaultSite::default()
                },
                message: format!(
                    "loop body recomputes {own} loop-invariant instruction{} every iteration",
                    plural(own as usize)
                ),
                fixit: Some(
                    "apply `passes::licm` (the paper's invariant-code-motion step — hoisting \
                     the ε² multiply is what frees a register after unrolling)"
                        .to_string(),
                ),
            });
        }
    }
}

/// Surface data-dependent trip counts via `ir::count`'s typed error.
fn trip_count_pass(kernel: &Kernel, cfg: &AnalysisConfig, diags: &mut Vec<Diagnostic>) {
    if let Err(e) = count::dynamic_instructions(kernel, &cfg.params) {
        diags.push(Diagnostic {
            severity: Severity::Info,
            kind: LintKind::UnboundedLoop,
            site: FaultSite {
                kernel: Some(kernel.name.clone()),
                ..FaultSite::default()
            },
            message: format!("{e}; instruction counts and Eq. 3 speedups are unavailable"),
            fixit: None,
        });
    }
}

/// Turn per-site accumulators into summaries and coalescing/bank findings.
fn summarize_sites(
    kernel: &Kernel,
    sites: &std::collections::BTreeMap<u64, SiteAcc>,
    report: &mut AnalysisReport,
    diags: &mut Vec<Diagnostic>,
) {
    for site in sites.values() {
        let stride = match site.stride {
            StrideTrack::Const(d) => Some(d),
            _ => None,
        };
        let kind_word = if site.is_load { "load" } else { "store" };
        let at = |instr: u64| FaultSite {
            kernel: Some(kernel.name.clone()),
            instruction: Some(instr),
            ..FaultSite::default()
        };
        match site.space {
            MemSpace::Global => {
                if site.exact {
                    report.predicted_transactions += site.transactions;
                    if site.transactions > site.ideal {
                        let stride_txt = match stride {
                            Some(d) => format!(" (adjacent lanes {d} bytes apart)"),
                            None => String::new(),
                        };
                        let fixit = match stride {
                            Some(d @ 17..=63) => format!(
                                "split the {d}-byte record into 128-bit sub-structures (see \
                                 `layout_advisor`): the paper's SoAoaS layout takes the force \
                                 kernel from 112 to 4 transactions per particle"
                            ),
                            _ => "rearrange the access so consecutive lanes touch consecutive \
                                  addresses of one 64/128-byte segment"
                                .to_string(),
                        };
                        diags.push(Diagnostic {
                            severity: Severity::Error,
                            kind: LintKind::UncoalescedAccess,
                            site: at(site.instr),
                            message: format!(
                                "uncoalesced global {kind_word} of {} bytes/lane: {} \
                                 transactions for {} half-warp issues (ideal {}){stride_txt}",
                                4 * site.width_words,
                                site.transactions,
                                site.half_warps,
                                site.ideal
                            ),
                            fixit: Some(fixit),
                        });
                    }
                } else if !site.misaligned {
                    report.exact = false;
                    diags.push(Diagnostic {
                        severity: Severity::Info,
                        kind: LintKind::Unanalyzable,
                        site: at(site.instr),
                        message: format!(
                            "global {kind_word} has a data-dependent address; its transactions \
                             are excluded from the exact prediction and bounded by [{}, {}]",
                            site.tx_lo, site.tx_hi
                        ),
                        fixit: None,
                    });
                }
                report.transaction_bounds.0 =
                    report.transaction_bounds.0.saturating_add(site.tx_lo);
                report.transaction_bounds.1 =
                    report.transaction_bounds.1.saturating_add(site.tx_hi);
            }
            MemSpace::Texture => {
                report.exact = false;
                diags.push(Diagnostic {
                    severity: Severity::Info,
                    kind: LintKind::TextureDependence,
                    site: at(site.instr),
                    message: format!(
                        "texture-path {kind_word} bypasses the coalescer; its traffic depends \
                         on dynamic cache state and is excluded from the static prediction"
                    ),
                    fixit: None,
                });
            }
            MemSpace::Shared => {
                if site.exact && site.bank_degree > site.width_words {
                    diags.push(Diagnostic {
                        severity: Severity::Warning,
                        kind: LintKind::BankConflict,
                        site: at(site.instr),
                        message: format!(
                            "shared {kind_word} serializes {}-way across the {} banks",
                            site.bank_degree,
                            // degree is computed against the device's banks
                            "16"
                        ),
                        fixit: Some(
                            "pad the shared stride to an odd word count, or make the \
                             half-warp's words fall in distinct banks"
                                .to_string(),
                        ),
                    });
                }
                if !site.exact && !site.misaligned {
                    diags.push(Diagnostic {
                        severity: Severity::Info,
                        kind: LintKind::Unanalyzable,
                        site: at(site.instr),
                        message: format!(
                            "shared {kind_word} has a data-dependent address; bank behaviour \
                             not statically known"
                        ),
                        fixit: None,
                    });
                }
            }
        }
        report.accesses.push(AccessSummary {
            instruction: site.instr,
            space: site.space,
            is_load: site.is_load,
            width_bytes: 4 * site.width_words,
            exact: site.exact,
            transactions: site.transactions,
            ideal_transactions: site.ideal,
            bus_bytes: site.bus_bytes,
            half_warp_accesses: site.half_warps,
            lane_stride: stride,
            bank_degree: site.bank_degree,
            transactions_lo: site.tx_lo,
            transactions_hi: site.tx_hi,
            half_warp_accesses_hi: site.half_warps_hi,
            addr_range: if site.addr_unbounded || site.addr_lo >= site.addr_hi {
                None
            } else {
                Some((site.addr_lo, site.addr_hi))
            },
            buffer_param: if site.param_mixed {
                None
            } else {
                site.param_base
            },
        });
    }
}

/// The static bounds certifier: prove every memory site's interval byte
/// footprint inside its allocation, or fire
/// [`LintKind::PossibleOutOfBounds`] with the interval witness.
///
/// Global and texture sites are checked against the declared
/// [`AnalysisConfig::buffers`] (a footprint must fit entirely inside *one*
/// buffer — spanning two extents is as much a bug as escaping them); the
/// check is off while no extents are declared. Shared sites with non-exact
/// addresses are checked against the kernel's static allocation
/// unconditionally (exact shared addresses already fault as
/// [`LintKind::OutOfBoundsShared`] in the interpreter).
fn bounds_pass(
    kernel: &Kernel,
    cfg: &AnalysisConfig,
    sites: &std::collections::BTreeMap<u64, SiteAcc>,
    diags: &mut Vec<Diagnostic>,
) {
    for site in sites.values() {
        let kind_word = if site.is_load { "load" } else { "store" };
        let touched = site.addr_unbounded || site.addr_lo < site.addr_hi;
        if !touched {
            continue;
        }
        let at = FaultSite {
            kernel: Some(kernel.name.clone()),
            instruction: Some(site.instr),
            ..FaultSite::default()
        };
        let mut warn = |message: String| {
            diags.push(Diagnostic {
                severity: Severity::Warning,
                kind: LintKind::PossibleOutOfBounds,
                site: at.clone(),
                message,
                fixit: None,
            });
        };
        match site.space {
            MemSpace::Global | MemSpace::Texture => {
                if cfg.buffers.is_empty() {
                    continue;
                }
                if site.addr_unbounded {
                    warn(format!(
                        "global {kind_word} address could not be bounded; in-bounds access is \
                         unproven for every declared buffer extent"
                    ));
                } else if !cfg
                    .buffers
                    .iter()
                    .any(|b| b.covers(site.addr_lo, site.addr_hi))
                {
                    warn(format!(
                        "global {kind_word} may touch bytes [{:#x}, {:#x}) — not provably \
                         inside any declared buffer extent",
                        site.addr_lo, site.addr_hi
                    ));
                }
            }
            MemSpace::Shared => {
                if site.exact {
                    continue; // concrete addresses were checked per access
                }
                if site.addr_unbounded {
                    warn(format!(
                        "shared {kind_word} address could not be bounded against the {}-byte \
                         static allocation",
                        kernel.smem_bytes
                    ));
                } else if site.addr_hi > kernel.smem_bytes as u64 {
                    warn(format!(
                        "shared {kind_word} may touch bytes [{:#x}, {:#x}) — beyond the \
                         {}-byte static allocation",
                        site.addr_lo, site.addr_hi, kernel.smem_bytes
                    ));
                }
            }
        }
    }
}

/// Occupancy + register-pressure advice (guarded so the occupancy
/// calculator's asserts can never fire).
fn pressure_pass(
    kernel: &Kernel,
    cfg: &AnalysisConfig,
    report: &mut AnalysisReport,
    diags: &mut Vec<Diagnostic>,
) {
    let dev = &cfg.device;
    let rd = register_demand(kernel);
    report.regs_per_thread = rd.regs_per_thread;
    let regs = rd.regs_per_thread as u32;
    let rpb = regs_per_block(dev, cfg.block, regs);
    let spb = kernel.smem_bytes.max(1).div_ceil(dev.smem_alloc_unit) * dev.smem_alloc_unit;
    let not_schedulable = |msg: String, diags: &mut Vec<Diagnostic>| {
        diags.push(Diagnostic {
            severity: Severity::Error,
            kind: LintKind::RegisterPressure,
            site: FaultSite {
                kernel: Some(kernel.name.clone()),
                ..FaultSite::default()
            },
            message: msg,
            fixit: None,
        });
    };
    if rpb > dev.regs_per_sm {
        not_schedulable(
            format!(
                "a single block needs {rpb} registers ({regs}/thread) — more than the SM's \
                 {}; the launch cannot be scheduled",
                dev.regs_per_sm
            ),
            diags,
        );
        return;
    }
    if spb > dev.smem_per_sm {
        not_schedulable(
            format!(
                "a single block needs {spb} bytes of shared memory — more than the SM's {}",
                dev.smem_per_sm
            ),
            diags,
        );
        return;
    }
    if cfg.block > dev.max_threads_per_sm {
        return;
    }
    let occ = occupancy(dev, cfg.block, regs, kernel.smem_bytes);
    if occ.limiter == Limiter::Registers {
        for freed in 1..=2u32 {
            if regs <= freed {
                break;
            }
            let o2 = occupancy(dev, cfg.block, regs - freed, kernel.smem_bytes);
            if o2.active_warps > occ.active_warps {
                diags.push(Diagnostic {
                    severity: Severity::Info,
                    kind: LintKind::RegisterPressure,
                    site: FaultSite {
                        kernel: Some(kernel.name.clone()),
                        ..FaultSite::default()
                    },
                    message: format!(
                        "registers limit occupancy to {} of {} warps ({:.0}%); freeing \
                         {freed} register{} would allow {} warps",
                        occ.active_warps,
                        occ.max_warps,
                        occ.percent(),
                        plural(freed as usize),
                        o2.active_warps
                    ),
                    fixit: Some(
                        "combine `passes::licm` with `passes::unroll_innermost` — the paper's \
                         17→16 register drop at 128 threads/block raises occupancy 50%→67%"
                            .to_string(),
                    ),
                });
                break;
            }
        }
    }
    report.occupancy = Some(occ);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{AluOp, CmpOp, KernelBuilder, SpecialReg};

    fn cfg(grid: u32, block: u32, params: Vec<u32>) -> AnalysisConfig {
        AnalysisConfig::new(grid, block, params)
    }

    fn kinds(report: &AnalysisReport, sev: Severity) -> Vec<&'static str> {
        report
            .diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .map(|d| d.kind.name())
            .collect()
    }

    /// Strided scalar loads, lane stride 4: strictly coalesced, clean, exact.
    #[test]
    fn coalesced_scalar_loads_are_clean_and_exact() {
        let mut b = KernelBuilder::new("soa_read");
        let buf = b.param();
        let out = b.param();
        let i = b.global_thread_index();
        let a = b.mad_u(i.into(), Operand::ImmU(4), buf.into());
        let v = b.ld(MemSpace::Global, a, 0, 1)[0];
        let oa = b.mad_u(i.into(), Operand::ImmU(4), out.into());
        b.st(MemSpace::Global, oa, 0, vec![v.into()]);
        let k = b.finish();
        let r = analyze_kernel(&k, &cfg(2, 64, vec![0x1000, 0x8000]));
        assert!(r.exact);
        assert!(!r.has_errors(), "diags: {:?}", r.diagnostics);
        // 2 blocks x 4 half-warps x (1 load + 1 store) = 16 transactions.
        assert_eq!(r.predicted_transactions, 16);
    }

    /// The paper's packed-record pattern: 28-byte lane stride, scalar loads.
    #[test]
    fn packed_record_stride_is_flagged_uncoalesced_with_layout_fixit() {
        let mut b = KernelBuilder::new("aos_read");
        let buf = b.param();
        let out = b.param();
        let i = b.global_thread_index();
        let a = b.mad_u(i.into(), Operand::ImmU(28), buf.into());
        let v = b.ld(MemSpace::Global, a, 0, 1)[0];
        let oa = b.mad_u(i.into(), Operand::ImmU(4), out.into());
        b.st(MemSpace::Global, oa, 0, vec![v.into()]);
        let k = b.finish();
        let r = analyze_kernel(&k, &cfg(1, 32, vec![0x1000, 0x8000]));
        assert!(r.has_errors());
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.kind == LintKind::UncoalescedAccess)
            .expect("uncoalesced finding");
        assert!(d.message.contains("28 bytes apart"), "{}", d.message);
        assert!(
            d.fixit.as_deref().unwrap_or("").contains("layout_advisor"),
            "fixit should point at the 128-bit split: {:?}",
            d.fixit
        );
        // Prediction still exact: 16 scalar txns/half-warp for the load.
        assert!(r.exact);
        assert_eq!(r.predicted_transactions, 2 * 16 + 2);
    }

    #[test]
    fn misaligned_vector_access_is_an_error() {
        let mut b = KernelBuilder::new("mis");
        let buf = b.param();
        let i = b.global_thread_index();
        // 16-byte loads at stride 16 but base offset 4: never 16B-aligned.
        let a = b.mad_u(i.into(), Operand::ImmU(16), buf.into());
        let _ = b.ld(MemSpace::Global, a, 4, 4);
        let k = b.finish();
        let r = analyze_kernel(&k, &cfg(1, 32, vec![0x1000]));
        assert!(kinds(&r, Severity::Error).contains(&"misaligned-access"));
        assert!(!r.exact, "a faulting access cannot be predicted exactly");
    }

    #[test]
    fn shared_stride_two_bank_conflict_is_warned() {
        let mut b = KernelBuilder::new("bank2");
        b.shared_mem(4096);
        let out = b.param();
        let tid = b.special(SpecialReg::TidX);
        let w = b.imul(tid.into(), Operand::ImmU(2));
        let a = b.imul(w.into(), Operand::ImmU(4));
        let v = b.ld(MemSpace::Shared, a, 0, 1)[0];
        let oa = b.mad_u(tid.into(), Operand::ImmU(4), out.into());
        b.st(MemSpace::Global, oa, 0, vec![v.into()]);
        let k = b.finish();
        let r = analyze_kernel(&k, &cfg(1, 32, vec![0x8000]));
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.kind == LintKind::BankConflict)
            .expect("bank conflict finding");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("2-way"), "{}", d.message);
    }

    /// Write-then-cross-read without a barrier races; with a barrier between
    /// it is clean.
    #[test]
    fn shared_race_requires_a_barrier() {
        let build = |with_sync: bool| {
            let mut b = KernelBuilder::new("xchg");
            b.shared_mem(128);
            let out = b.param();
            let tid = b.special(SpecialReg::TidX);
            let my = b.imul(tid.into(), Operand::ImmU(4));
            let seed = b.alu(AluOp::IShl, tid.into(), Operand::ImmU(1));
            b.st(MemSpace::Shared, my, 0, vec![seed.into()]);
            if with_sync {
                b.sync();
            }
            // Read the neighbour's word: (tid+1) mod 32.
            let n1 = b.iadd(tid.into(), Operand::ImmU(1));
            let nm = b.alu(AluOp::IAnd, n1.into(), Operand::ImmU(31));
            let na = b.imul(nm.into(), Operand::ImmU(4));
            let v = b.ld(MemSpace::Shared, na, 0, 1)[0];
            let oa = b.mad_u(tid.into(), Operand::ImmU(4), out.into());
            b.st(MemSpace::Global, oa, 0, vec![v.into()]);
            b.finish()
        };
        let racy = analyze_kernel(&build(false), &cfg(1, 32, vec![0x8000]));
        assert!(
            kinds(&racy, Severity::Error).contains(&"shared-race"),
            "{:?}",
            racy.diagnostics
        );
        let clean = analyze_kernel(&build(true), &cfg(1, 32, vec![0x8000]));
        assert!(
            !clean
                .diagnostics
                .iter()
                .any(|d| d.kind == LintKind::SharedRace),
            "{:?}",
            clean.diagnostics
        );
    }

    /// A barrier inside a lane-divergent conditional is a proven error.
    #[test]
    fn sync_under_divergent_if_is_an_error() {
        let mut b = KernelBuilder::new("divsync");
        let tid = b.special(SpecialReg::TidX);
        let p = b.setp(CmpOp::ULt, tid.into(), Operand::ImmU(16));
        b.if_then(p, |b| b.sync());
        let k = b.finish();
        let r = analyze_kernel(&k, &cfg(1, 32, vec![]));
        assert!(
            kinds(&r, Severity::Error).contains(&"divergent-sync"),
            "{:?}",
            r.diagnostics
        );
    }

    /// Warp-uniform but block-divergent barriers deadlock the block.
    #[test]
    fn unequal_warp_barrier_counts_deadlock() {
        let mut b = KernelBuilder::new("halfbar");
        let tid = b.special(SpecialReg::TidX);
        let p = b.setp(CmpOp::ULt, tid.into(), Operand::ImmU(32));
        b.if_then(p, |b| b.sync());
        let k = b.finish();
        // Block of 64: warp 0 takes the branch wholesale, warp 1 skips it —
        // no divergent-sync, but warp barrier counts are 1 vs 0.
        let r = analyze_kernel(&k, &cfg(1, 64, vec![]));
        assert!(
            kinds(&r, Severity::Error).contains(&"barrier-deadlock"),
            "{:?}",
            r.diagnostics
        );
    }

    #[test]
    fn non_uniform_loop_backedge_is_the_executor_fault() {
        let mut b = KernelBuilder::new("divloop");
        let tid = b.special(SpecialReg::TidX);
        let end = b.iadd(tid.into(), Operand::ImmU(1));
        b.for_loop(Operand::ImmU(0), end.into(), 1, |b, _| {
            b.mov(Operand::ImmF(0.0));
        });
        let k = b.finish();
        let r = analyze_kernel(&k, &cfg(1, 32, vec![]));
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.kind == LintKind::DivergentLoopBranch)
            .expect("divergent loop backedge");
        assert_eq!(d.severity, Severity::Error);
        assert!(!r.exact);
    }

    #[test]
    fn dead_store_and_use_before_def_are_reported() {
        let mut b = KernelBuilder::new("defuse");
        let out = b.param();
        let tid = b.special(SpecialReg::TidX);
        let _dead = b.mov(Operand::ImmF(3.0)); // never read
        let ghost = b.reg(); // read but never written
        let oa = b.mad_u(tid.into(), Operand::ImmU(4), out.into());
        b.st(MemSpace::Global, oa, 0, vec![ghost.into()]);
        let k = b.finish();
        let r = analyze_kernel(&k, &cfg(1, 32, vec![0x8000]));
        assert!(
            kinds(&r, Severity::Warning).contains(&"dead-code"),
            "{:?}",
            r.diagnostics
        );
        assert!(
            kinds(&r, Severity::Error).contains(&"use-before-def"),
            "{:?}",
            r.diagnostics
        );
    }

    #[test]
    fn invariant_in_loop_suggests_licm() {
        let mut b = KernelBuilder::new("inv");
        let out = b.param();
        let eps = b.param();
        let tid = b.special(SpecialReg::TidX);
        let acc = b.mov(Operand::ImmF(0.0));
        b.for_loop(Operand::ImmU(0), Operand::ImmU(8), 1, |b, _i| {
            let e2 = b.fmul(eps.into(), eps.into()); // loop-invariant
            b.alu_into(acc, AluOp::FAdd, acc.into(), e2.into());
        });
        let oa = b.mad_u(tid.into(), Operand::ImmU(4), out.into());
        b.st(MemSpace::Global, oa, 0, vec![acc.into()]);
        let k = b.finish();
        let r = analyze_kernel(&k, &cfg(1, 32, vec![0x8000, 1.5f32.to_bits()]));
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.kind == LintKind::UnhoistedInvariant)
            .expect("licm finding");
        assert!(d.fixit.as_deref().unwrap_or("").contains("licm"));
    }

    /// The paper's 17-register kernel at 128 threads: registers limit
    /// occupancy to 50%, and freeing one register would reach 67%.
    #[test]
    fn register_pressure_advice_matches_the_paper() {
        let mut b = KernelBuilder::new("fat");
        b.shared_mem(2048);
        let out = b.param();
        let tid = b.special(SpecialReg::TidX);
        let addr = b.mad_u(tid.into(), Operand::ImmU(4), out.into());
        let vals: Vec<_> = (0..16).map(|i| b.mov(Operand::ImmF(i as f32))).collect();
        for v in &vals[1..] {
            b.alu_into(vals[0], AluOp::FAdd, vals[0].into(), (*v).into());
        }
        b.st(MemSpace::Global, addr, 0, vec![vals[0].into()]);
        let k = b.finish();
        let r = analyze_kernel(&k, &cfg(1, 128, vec![0x8000]));
        assert_eq!(r.regs_per_thread, 17, "addr + 16 live accumulands");
        let occ = r.occupancy.as_ref().expect("schedulable");
        assert_eq!(occ.limiter, Limiter::Registers);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.kind == LintKind::RegisterPressure)
            .expect("pressure advice");
        assert_eq!(d.severity, Severity::Info);
        assert!(d.message.contains("freeing 1 register"), "{}", d.message);
    }

    #[test]
    fn data_dependent_loop_bound_reports_unbounded_loop() {
        let mut b = KernelBuilder::new("dynloop");
        let buf = b.param();
        let out = b.param();
        let tid = b.special(SpecialReg::TidX);
        let n = b.ld(MemSpace::Global, buf, 0, 1)[0];
        let oa = b.mad_u(tid.into(), Operand::ImmU(4), out.into());
        b.for_loop(Operand::ImmU(0), n.into(), 1, |b, _| {
            let z = b.mov(Operand::ImmF(0.0));
            b.st(MemSpace::Global, oa, 0, vec![z.into()]);
        });
        let k = b.finish();
        let r = analyze_kernel(&k, &cfg(1, 32, vec![0x1000, 0x8000]));
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.kind == LintKind::UnboundedLoop),
            "{:?}",
            r.diagnostics
        );
        assert!(
            !r.exact,
            "stores repeated a data-dependent number of times leave the prediction partial"
        );
    }

    #[test]
    fn texture_reads_are_info_and_excluded() {
        let mut b = KernelBuilder::new("tex");
        let buf = b.param();
        let out = b.param();
        let i = b.global_thread_index();
        let a = b.mad_u(i.into(), Operand::ImmU(28), buf.into());
        let v = b.ld(MemSpace::Texture, a, 0, 1)[0];
        let oa = b.mad_u(i.into(), Operand::ImmU(4), out.into());
        b.st(MemSpace::Global, oa, 0, vec![v.into()]);
        let k = b.finish();
        let r = analyze_kernel(&k, &cfg(1, 32, vec![0x1000, 0x8000]));
        // The texture path is never "uncoalesced" — it bypasses the
        // coalescer — but the prediction stops being exhaustive.
        assert!(!r.has_errors(), "{:?}", r.diagnostics);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.kind == LintKind::TextureDependence));
        assert!(!r.exact);
        assert_eq!(
            r.predicted_transactions, 2,
            "only the global store is predicted"
        );
    }

    #[test]
    fn wrong_param_count_is_rejected_not_panicked() {
        let mut b = KernelBuilder::new("p2");
        let _ = b.param();
        let _ = b.param();
        let k = b.finish();
        let r = analyze_kernel(&k, &cfg(1, 32, vec![7]));
        assert!(r.has_errors());
        assert!(kinds(&r, Severity::Error).contains(&"unanalyzable"));
    }

    #[test]
    fn render_mentions_site_and_fixit() {
        let mut b = KernelBuilder::new("aos28");
        let buf = b.param();
        let i = b.global_thread_index();
        let a = b.mad_u(i.into(), Operand::ImmU(28), buf.into());
        let v = b.ld(MemSpace::Global, a, 0, 1)[0];
        let oa = b.mad_u(i.into(), Operand::ImmU(4), buf.into());
        b.st(MemSpace::Global, oa, 0, vec![v.into()]);
        let k = b.finish();
        let r = analyze_kernel(&k, &cfg(1, 32, vec![0x1000]));
        let txt = r.render();
        assert!(txt.contains("error[uncoalesced-access]"), "{txt}");
        assert!(txt.contains("kernel `aos28`"), "{txt}");
        assert!(txt.contains("fix:"), "{txt}");
    }
}
