//! Instruction counting and the paper's Eq. 3 speedup model.
//!
//! Section IV-A of the paper models a tiled O(n²) kernel as
//! `S + (N/K)·B + N·P` instructions per thread — setup, per-tile block code,
//! and the innermost per-element code — and predicts the unrolling speedup as
//! `P₁/P₂`, the ratio of innermost-loop instruction budgets. This module
//! computes all three quantities *from the IR*, so the model's inputs are
//! measured rather than assumed.

use super::*;
use std::fmt;

/// Why a kernel's dynamic instruction count cannot be computed statically.
///
/// Counting requires every loop trip count to be a launch-time constant;
/// data-dependent control flow (the Barnes–Hut traversal's `While` stack
/// loop, a `For` bounded by a loaded value) has no static count. The
/// advisors surface this as an "unbounded loop" condition instead of
/// crashing — see `crate::analyze`.
#[derive(Debug, Clone, PartialEq)]
pub enum CountError {
    /// A `For` loop's end operand is neither an immediate nor a parameter.
    DataDependentBound {
        /// The loop's induction variable, for locating it in a disassembly.
        var: Reg,
    },
    /// A `While` loop: trip counts are inherently data-dependent.
    DataDependentLoop,
    /// A loop whose lowered step is zero never advances its induction
    /// variable: no finite trip count exists.
    ZeroStep,
    /// Eq. 3 divides instruction budgets; a non-positive budget has no
    /// meaningful speedup ratio.
    NonPositiveBudget {
        /// The offending budget value.
        budget: f64,
    },
    /// The launch supplied a different number of parameter values than the
    /// kernel declares.
    ParamCountMismatch {
        /// Parameters the kernel declares.
        expected: u16,
        /// Values the launch supplied.
        got: usize,
    },
}

impl fmt::Display for CountError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CountError::DataDependentBound { var } => write!(
                f,
                "loop bound for induction variable %r{} is not a launch constant",
                var.0
            ),
            CountError::DataDependentLoop => {
                write!(f, "data-dependent While loop has no static trip count")
            }
            CountError::ZeroStep => write!(f, "loop step of 0 never terminates"),
            CountError::NonPositiveBudget { budget } => {
                write!(
                    f,
                    "instruction budget {budget} is not positive; Eq. 3 is undefined"
                )
            }
            CountError::ParamCountMismatch { expected, got } => {
                write!(
                    f,
                    "kernel takes {expected} parameters, launch supplied {got}"
                )
            }
        }
    }
}

impl std::error::Error for CountError {}

/// Resolve an operand that must be a launch-time constant: an immediate or a
/// parameter register. Returns `None` for anything data-dependent.
fn resolve_const(op: &Operand, params: &[u32]) -> Option<u32> {
    match op {
        Operand::ImmU(v) => Some(*v),
        Operand::R(r) if (r.0 as usize) < params.len() => Some(params[r.0 as usize]),
        _ => None,
    }
}

/// Trip count of a lowered (bottom-tested) loop: at least one iteration.
/// A zero step is a [`CountError::ZeroStep`], not a panic.
pub fn trip_count(start: u32, end: u32, step: u32) -> Result<u64, CountError> {
    if step == 0 {
        return Err(CountError::ZeroStep);
    }
    if end <= start {
        Ok(1) // bottom-tested loops execute once even when the bound is degenerate
    } else {
        Ok(((end - start) as u64).div_ceil(step as u64))
    }
}

/// Dynamic instructions executed by **one thread** of the kernel, given the
/// launch parameter values (loop bounds must be immediates or parameters).
///
/// Loop accounting matches [`super::lower`]: one init `mov`, plus per
/// iteration the body and the 3-instruction overhead (add, compare, branch).
/// Both sides of an `If` are charged (divergent serialization — the
/// conservative SIMT cost). Data-dependent loop bounds are a [`CountError`],
/// not a panic, so callers (the advisors, the static analyzer) can degrade
/// to an "unbounded loop" diagnostic.
pub fn dynamic_instructions(kernel: &Kernel, params: &[u32]) -> Result<u64, CountError> {
    if kernel.n_params as usize != params.len() {
        return Err(CountError::ParamCountMismatch {
            expected: kernel.n_params,
            got: params.len(),
        });
    }
    fn count(stmts: &[Stmt], params: &[u32]) -> Result<u64, CountError> {
        let mut total = 0u64;
        for s in stmts {
            match s {
                Stmt::I(_) => total += 1,
                Stmt::Sync => total += 1,
                Stmt::If { then, els, .. } => {
                    total += count(then, params)? + count(els, params)?;
                }
                Stmt::For {
                    var,
                    start,
                    end,
                    step,
                    body,
                } => {
                    // A data-dependent start (the grid-strided tile loop
                    // starts at `tid`) counts as thread 0's trip count.
                    let st = resolve_const(start, params).unwrap_or(0);
                    let en = resolve_const(end, params)
                        .ok_or(CountError::DataDependentBound { var: *var })?;
                    let trips = trip_count(st, en, *step)?;
                    total += 1 + trips * (count(body, params)? + 3);
                }
                Stmt::While { .. } => return Err(CountError::DataDependentLoop),
            }
        }
        Ok(total)
    }
    count(&kernel.body, params)
}

/// Profile of the innermost loop: the `P` term of Eq. 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InnerLoopProfile {
    /// Static instructions in the innermost loop body.
    pub body_instrs: u64,
    /// Loop-overhead instructions per iteration (3 in the lowered form).
    pub overhead_instrs: u64,
    /// Nesting depth at which the innermost loop was found (1 = top level).
    pub depth: u32,
}

impl InnerLoopProfile {
    /// Instructions per innermost iteration including overhead — the paper's
    /// "a little more than 25 instructions including the instructions needed
    /// for the loop".
    pub fn per_iteration(&self) -> u64 {
        self.body_instrs + self.overhead_instrs
    }
}

/// Find the innermost (deepest, first encountered at that depth) loop and
/// profile it. Returns `None` for loop-free kernels — e.g. a fully unrolled
/// one, whose "per iteration" cost should then be measured as straight-line
/// instructions per element instead.
pub fn inner_loop_profile(kernel: &Kernel) -> Option<InnerLoopProfile> {
    fn static_count(stmts: &[Stmt]) -> u64 {
        let mut n = 0;
        for s in stmts {
            match s {
                Stmt::I(_) | Stmt::Sync => n += 1,
                Stmt::If { then, els, .. } => n += 1 + static_count(then) + static_count(els),
                Stmt::For { body, .. } => n += 4 + static_count(body), // init + overhead
                Stmt::While { body, .. } => n += 1 + static_count(body), // + backedge branch
            }
        }
        n
    }
    fn deepest(stmts: &[Stmt], depth: u32, best: &mut Option<(u32, u64)>) {
        for s in stmts {
            match s {
                Stmt::While { body, .. } => deepest(body, depth, best),
                Stmt::For { body, .. } => {
                    let has_nested = body.iter().any(|b| matches!(b, Stmt::For { .. }));
                    if !has_nested {
                        let cnt = static_count(body);
                        match best {
                            Some((d, _)) if *d > depth => {}
                            _ => *best = Some((depth + 1, cnt)),
                        }
                    }
                    deepest(body, depth + 1, best);
                }
                Stmt::If { then, els, .. } => {
                    deepest(then, depth, best);
                    deepest(els, depth, best);
                }
                _ => {}
            }
        }
    }
    let mut best = None;
    deepest(&kernel.body, 0, &mut best);
    best.map(|(depth, body_instrs)| InnerLoopProfile {
        body_instrs,
        overhead_instrs: 3,
        depth,
    })
}

/// The paper's Eq. 3: predicted speedup from replacing an innermost-loop
/// budget of `p1` instructions/element with `p2`. Non-positive budgets are a
/// [`CountError::NonPositiveBudget`], not a panic.
pub fn eq3_speedup(p1: f64, p2: f64) -> Result<f64, CountError> {
    for b in [p1, p2] {
        if b.is_nan() || b <= 0.0 {
            return Err(CountError::NonPositiveBudget { budget: b });
        }
    }
    Ok(p1 / p2)
}

/// Dynamic instruction histogram by coarse class, for reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstrMix {
    /// f32 arithmetic (add/sub/mul/mad/min/max/neg).
    pub fp: u64,
    /// Integer/address arithmetic, moves, converts, predicates.
    pub int: u64,
    /// Special-function (rsqrt).
    pub sfu: u64,
    /// Global + shared loads.
    pub loads: u64,
    /// Global + shared stores.
    pub stores: u64,
    /// Loop overhead (induction add + compare + branch) and syncs.
    pub control: u64,
}

impl InstrMix {
    /// Total dynamic instructions.
    pub fn total(&self) -> u64 {
        self.fp + self.int + self.sfu + self.loads + self.stores + self.control
    }
}

/// Dynamic instruction mix for one thread. Same counting contract (and the
/// same [`CountError`] degradation) as [`dynamic_instructions`].
pub fn instruction_mix(kernel: &Kernel, params: &[u32]) -> Result<InstrMix, CountError> {
    if kernel.n_params as usize != params.len() {
        return Err(CountError::ParamCountMismatch {
            expected: kernel.n_params,
            got: params.len(),
        });
    }
    fn classify(i: &Instr, m: &mut InstrMix, mult: u64) {
        match i {
            Instr::Alu { op, .. } if op.is_float() => m.fp += mult,
            Instr::Mad { float: true, .. } => m.fp += mult,
            Instr::Unary {
                op: UnaryOp::FRsqrt,
                ..
            } => m.sfu += mult,
            Instr::Unary { .. } => m.int += mult,
            Instr::Ld { .. } => m.loads += mult,
            Instr::St { .. } => m.stores += mult,
            Instr::Clock { .. } => m.int += mult,
            _ => m.int += mult,
        }
    }
    fn walk(stmts: &[Stmt], params: &[u32], mult: u64, m: &mut InstrMix) -> Result<(), CountError> {
        for s in stmts {
            match s {
                Stmt::I(i) => classify(i, m, mult),
                Stmt::Sync => m.control += mult,
                Stmt::If { then, els, .. } => {
                    walk(then, params, mult, m)?;
                    walk(els, params, mult, m)?;
                }
                Stmt::While { .. } => return Err(CountError::DataDependentLoop),
                Stmt::For {
                    var,
                    start,
                    end,
                    step,
                    body,
                } => {
                    let st = resolve_const(start, params).unwrap_or(0);
                    let en = resolve_const(end, params)
                        .ok_or(CountError::DataDependentBound { var: *var })?;
                    let trips = trip_count(st, en, *step)?;
                    m.int += mult; // init mov
                    m.control += mult * trips * 3;
                    walk(body, params, mult * trips, m)?;
                }
            }
        }
        Ok(())
    }
    let mut m = InstrMix::default();
    walk(&kernel.body, params, 1, &mut m)?;
    Ok(m)
}

/// Saturating variant of the mix classifier, for the bounds walk: widened
/// trip budgets can push multipliers toward `u64::MAX`, which must clamp
/// rather than wrap.
fn classify_sat(i: &Instr, m: &mut InstrMix, mult: u64) {
    let slot: &mut u64 = match i {
        Instr::Alu { op, .. } if op.is_float() => &mut m.fp,
        Instr::Mad { float: true, .. } => &mut m.fp,
        Instr::Unary {
            op: UnaryOp::FRsqrt,
            ..
        } => &mut m.sfu,
        Instr::Unary { .. } => &mut m.int,
        Instr::Ld { .. } => &mut m.loads,
        Instr::St { .. } => &mut m.stores,
        _ => &mut m.int,
    };
    *slot = slot.saturating_add(mult);
}

/// Dynamic instruction-mix **bounds** for one thread: a `[best, worst]`
/// pair of mixes under the given trip-count budget for data-dependent loops.
///
/// The contract extends [`instruction_mix`] instead of replacing it:
///
/// * every statically countable construct is charged exactly as the exact
///   counter charges it — for a kernel with no data-dependent loop the two
///   mixes are equal *and* equal to [`instruction_mix`]'s result;
/// * a `While` loop (bottom-tested, so at least one trip) is charged
///   `[1, trip_budget]` trips plus one backedge branch per trip;
/// * a `For` loop whose end operand is not a launch constant is charged
///   `[1, trip_budget]` trips (the caller asserts, via the budget, that its
///   loops terminate within it — the same contract as
///   `analyze::AnalysisConfig::with_trip_budget`).
///
/// Both sides of an `If` are charged in both bounds, matching the exact
/// counter's divergent-serialization model. Accumulation saturates.
pub fn instruction_mix_bounds(
    kernel: &Kernel,
    params: &[u32],
    trip_budget: u64,
) -> Result<(InstrMix, InstrMix), CountError> {
    if kernel.n_params as usize != params.len() {
        return Err(CountError::ParamCountMismatch {
            expected: kernel.n_params,
            got: params.len(),
        });
    }
    let budget = trip_budget.max(1);
    fn walk(
        stmts: &[Stmt],
        params: &[u32],
        budget: u64,
        mult: (u64, u64),
        lo: &mut InstrMix,
        hi: &mut InstrMix,
    ) -> Result<(), CountError> {
        for s in stmts {
            match s {
                Stmt::I(i) => {
                    classify_sat(i, lo, mult.0);
                    classify_sat(i, hi, mult.1);
                }
                Stmt::Sync => {
                    lo.control = lo.control.saturating_add(mult.0);
                    hi.control = hi.control.saturating_add(mult.1);
                }
                Stmt::If { then, els, .. } => {
                    walk(then, params, budget, mult, lo, hi)?;
                    walk(els, params, budget, mult, lo, hi)?;
                }
                Stmt::While { body, .. } => {
                    // One backedge branch per trip, trips ∈ [1, budget].
                    lo.control = lo.control.saturating_add(mult.0);
                    hi.control = hi.control.saturating_add(mult.1.saturating_mul(budget));
                    walk(
                        body,
                        params,
                        budget,
                        (mult.0, mult.1.saturating_mul(budget)),
                        lo,
                        hi,
                    )?;
                }
                Stmt::For {
                    start,
                    end,
                    step,
                    body,
                    ..
                } => {
                    let st = resolve_const(start, params).unwrap_or(0);
                    let (tl, th) = match resolve_const(end, params) {
                        Some(en) => {
                            let t = trip_count(st, en, *step)?;
                            (t, t)
                        }
                        None if *step == 0 => return Err(CountError::ZeroStep),
                        None => (1, budget),
                    };
                    lo.int = lo.int.saturating_add(mult.0); // init mov
                    hi.int = hi.int.saturating_add(mult.1);
                    lo.control = lo
                        .control
                        .saturating_add(mult.0.saturating_mul(tl).saturating_mul(3));
                    hi.control = hi
                        .control
                        .saturating_add(mult.1.saturating_mul(th).saturating_mul(3));
                    walk(
                        body,
                        params,
                        budget,
                        (mult.0.saturating_mul(tl), mult.1.saturating_mul(th)),
                        lo,
                        hi,
                    )?;
                }
            }
        }
        Ok(())
    }
    let (mut lo, mut hi) = (InstrMix::default(), InstrMix::default());
    walk(&kernel.body, params, budget, (1, 1), &mut lo, &mut hi)?;
    Ok((lo, hi))
}

/// `[best, worst]` dynamic instruction totals for one thread — the bounds
/// counterpart of [`dynamic_instructions`], same budget contract as
/// [`instruction_mix_bounds`].
pub fn dynamic_instruction_bounds(
    kernel: &Kernel,
    params: &[u32],
    trip_budget: u64,
) -> Result<(u64, u64), CountError> {
    let (lo, hi) = instruction_mix_bounds(kernel, params, trip_budget)?;
    Ok((lo.total(), hi.total()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::KernelBuilder;

    #[test]
    fn trip_count_semantics() {
        assert_eq!(trip_count(0, 10, 1).unwrap(), 10);
        assert_eq!(trip_count(0, 10, 3).unwrap(), 4);
        assert_eq!(
            trip_count(5, 5, 1).unwrap(),
            1,
            "bottom-tested: at least once"
        );
        assert_eq!(trip_count(2, 10, 4).unwrap(), 2);
    }

    #[test]
    fn zero_step_is_an_error_not_a_panic() {
        let err = trip_count(0, 10, 0).unwrap_err();
        assert_eq!(err, CountError::ZeroStep);
        assert!(err.to_string().contains("never terminates"));
    }

    #[test]
    fn param_count_mismatch_is_an_error_not_a_panic() {
        let mut b = KernelBuilder::new("pc");
        let _ = b.param();
        let k = b.finish();
        let err = dynamic_instructions(&k, &[]).unwrap_err();
        assert_eq!(
            err,
            CountError::ParamCountMismatch {
                expected: 1,
                got: 0
            }
        );
        assert!(err.to_string().contains("takes 1 parameters"));
        assert_eq!(
            instruction_mix(&k, &[1, 2]).unwrap_err(),
            CountError::ParamCountMismatch {
                expected: 1,
                got: 2
            }
        );
    }

    #[test]
    fn straight_line_count() {
        let mut b = KernelBuilder::new("sl");
        b.mov(Operand::ImmU(1));
        b.mov(Operand::ImmU(2));
        assert_eq!(dynamic_instructions(&b.finish(), &[]).unwrap(), 2);
    }

    #[test]
    fn loop_count_includes_overhead() {
        let mut b = KernelBuilder::new("l");
        b.for_loop(Operand::ImmU(0), Operand::ImmU(10), 1, |b, _| {
            b.mov(Operand::ImmF(0.0));
            b.mov(Operand::ImmF(1.0));
        });
        // 1 init + 10 × (2 body + 3 overhead) = 51
        assert_eq!(dynamic_instructions(&b.finish(), &[]).unwrap(), 51);
    }

    #[test]
    fn param_bound_loop_resolves_from_launch_values() {
        let mut b = KernelBuilder::new("p");
        let n = b.param();
        b.for_loop(Operand::ImmU(0), n.into(), 1, |b, _| {
            b.mov(Operand::ImmF(0.0));
        });
        let k = b.finish();
        assert_eq!(dynamic_instructions(&k, &[5]).unwrap(), 1 + 5 * 4);
        assert_eq!(dynamic_instructions(&k, &[100]).unwrap(), 1 + 100 * 4);
    }

    #[test]
    fn nested_loops_multiply() {
        let mut b = KernelBuilder::new("nest");
        b.for_loop(Operand::ImmU(0), Operand::ImmU(4), 1, |b, _| {
            b.for_loop(Operand::ImmU(0), Operand::ImmU(8), 1, |b, _| {
                b.mov(Operand::ImmF(0.0));
            });
        });
        // outer: 1 + 4 × (inner + 3); inner: 1 + 8 × (1 + 3) = 33
        assert_eq!(
            dynamic_instructions(&b.finish(), &[]).unwrap(),
            1 + 4 * (33 + 3)
        );
    }

    #[test]
    fn data_dependent_bound_is_an_error_not_a_panic() {
        let mut b = KernelBuilder::new("dd");
        let base = b.param();
        let end = b.ld(MemSpace::Global, base, 0, 1)[0];
        b.for_loop(Operand::ImmU(0), end.into(), 1, |b, _| {
            b.mov(Operand::ImmF(0.0));
        });
        let k = b.finish();
        let err = dynamic_instructions(&k, &[0]).unwrap_err();
        assert!(
            matches!(err, CountError::DataDependentBound { .. }),
            "{err}"
        );
        assert!(err.to_string().contains("not a launch constant"));
        assert!(instruction_mix(&k, &[0]).is_err());
    }

    #[test]
    fn while_loop_is_an_error_not_a_panic() {
        let mut b = KernelBuilder::new("w");
        let x = b.mov(Operand::ImmU(3));
        b.do_while(|b| {
            b.alu_into(x, AluOp::ISub, x.into(), Operand::ImmU(1));
            b.setp(CmpOp::UNe, x.into(), Operand::ImmU(0))
        });
        let k = b.finish();
        assert_eq!(
            dynamic_instructions(&k, &[]).unwrap_err(),
            CountError::DataDependentLoop
        );
        assert_eq!(
            instruction_mix(&k, &[]).unwrap_err(),
            CountError::DataDependentLoop
        );
    }

    #[test]
    fn inner_loop_profile_finds_deepest() {
        let mut b = KernelBuilder::new("prof");
        b.for_loop(Operand::ImmU(0), Operand::ImmU(4), 1, |b, _| {
            b.mov(Operand::ImmF(0.0));
            b.for_loop(Operand::ImmU(0), Operand::ImmU(8), 1, |b, _| {
                b.mov(Operand::ImmF(1.0));
                b.mov(Operand::ImmF(2.0));
            });
        });
        let p = inner_loop_profile(&b.finish()).unwrap();
        assert_eq!(p.depth, 2);
        assert_eq!(p.body_instrs, 2);
        assert_eq!(p.per_iteration(), 5);
    }

    #[test]
    fn loop_free_kernel_has_no_profile() {
        let mut b = KernelBuilder::new("flat");
        b.mov(Operand::ImmU(0));
        assert!(inner_loop_profile(&b.finish()).is_none());
    }

    #[test]
    fn eq3_matches_paper_example() {
        // Removing 4 of 21 per-iteration instructions predicts ≈ 1.19×,
        // the paper's ~18 % unrolling gain.
        let s = eq3_speedup(21.0, 17.0).unwrap();
        assert!((s - 21.0 / 17.0).abs() < 1e-12);
        assert!(s > 1.18 && s < 1.25);
    }

    #[test]
    fn eq3_rejects_non_positive_budgets() {
        assert_eq!(
            eq3_speedup(0.0, 17.0).unwrap_err(),
            CountError::NonPositiveBudget { budget: 0.0 }
        );
        assert!(matches!(
            eq3_speedup(21.0, -1.0),
            Err(CountError::NonPositiveBudget { .. })
        ));
        assert!(matches!(
            eq3_speedup(f64::NAN, 1.0),
            Err(CountError::NonPositiveBudget { .. })
        ));
    }

    #[test]
    fn mix_classifies_by_unit() {
        let mut b = KernelBuilder::new("mix");
        let base = b.param();
        let x = b.ld(MemSpace::Global, base, 0, 1)[0];
        let y = b.fmul(x.into(), x.into());
        let r = b.frsqrt(y.into());
        b.st(MemSpace::Global, base, 4, vec![r.into()]);
        let m = instruction_mix(&b.finish(), &[0]).unwrap();
        assert_eq!(m.loads, 1);
        assert_eq!(m.fp, 1);
        assert_eq!(m.sfu, 1);
        assert_eq!(m.stores, 1);
        assert_eq!(m.total(), 4);
    }

    #[test]
    fn mix_bounds_collapse_to_exact_without_data_dependence() {
        let mut b = KernelBuilder::new("cb");
        let n = b.param();
        let base = b.param();
        b.for_loop(Operand::ImmU(0), n.into(), 1, |b, i| {
            let a = b.mad_u(i.into(), Operand::ImmU(4), base.into());
            let v = b.ld(MemSpace::Global, a, 0, 1)[0];
            let w = b.fadd(v.into(), Operand::ImmF(1.0));
            b.st(MemSpace::Global, a, 0, vec![w.into()]);
        });
        let k = b.finish();
        let params = &[9u32, 0x100];
        let exact = instruction_mix(&k, params).unwrap();
        let (lo, hi) = instruction_mix_bounds(&k, params, 4096).unwrap();
        assert_eq!(lo, exact);
        assert_eq!(hi, exact);
    }

    #[test]
    fn while_bounds_span_one_to_budget_trips() {
        let mut b = KernelBuilder::new("wb");
        let x = b.mov(Operand::ImmU(10));
        b.do_while(|b| {
            b.fadd(Operand::ImmF(0.0), Operand::ImmF(1.0));
            b.alu_into(x, AluOp::ISub, x.into(), Operand::ImmU(1));
            b.setp(CmpOp::UNe, x.into(), Operand::ImmU(0))
        });
        let k = b.finish();
        assert!(
            instruction_mix(&k, &[]).is_err(),
            "exact counter must still refuse"
        );
        let (lo, hi) = instruction_mix_bounds(&k, &[], 16).unwrap();
        // Body per trip: 1 fp + 2 int (sub, setp) + 1 backedge control.
        assert_eq!(lo.fp, 1);
        assert_eq!(hi.fp, 16);
        // mov before the loop: 1 int each; body int ×trips.
        assert_eq!(lo.int, 1 + 2);
        assert_eq!(hi.int, 1 + 2 * 16);
        assert_eq!(lo.control, 1);
        assert_eq!(hi.control, 16);
        assert!(lo.total() <= hi.total());
    }

    #[test]
    fn data_dependent_for_bounds_span_one_to_budget() {
        let mut b = KernelBuilder::new("df");
        let base = b.param();
        let end = b.ld(MemSpace::Global, base, 0, 1)[0];
        b.for_loop(Operand::ImmU(0), end.into(), 1, |b, _| {
            b.mov(Operand::ImmF(0.0));
        });
        let k = b.finish();
        assert!(instruction_mix(&k, &[0]).is_err());
        let (lo, hi) = instruction_mix_bounds(&k, &[0], 8).unwrap();
        assert_eq!(lo.control, 3);
        assert_eq!(hi.control, 3 * 8);
        assert_eq!(lo.total() + 7 * 4, hi.total());
    }

    #[test]
    fn bounds_saturate_instead_of_wrapping() {
        let mut b = KernelBuilder::new("sat");
        let x = b.mov(Operand::ImmU(1));
        b.do_while(|b| {
            b.do_while(|b| {
                b.do_while(|b| {
                    b.mov(Operand::ImmU(2));
                    b.setp(CmpOp::UNe, x.into(), Operand::ImmU(0))
                });
                b.setp(CmpOp::UNe, x.into(), Operand::ImmU(0))
            });
            b.setp(CmpOp::UNe, x.into(), Operand::ImmU(0))
        });
        let (lo, hi) = instruction_mix_bounds(&b.finish(), &[], u64::MAX).unwrap();
        assert_eq!(hi.int, u64::MAX);
        assert!(lo.total() < u64::MAX);
    }

    #[test]
    fn mix_total_matches_dynamic_count() {
        let mut b = KernelBuilder::new("consistent");
        let n = b.param();
        let base = b.param();
        b.for_loop(Operand::ImmU(0), n.into(), 1, |b, i| {
            let a = b.mad_u(i.into(), Operand::ImmU(4), base.into());
            let v = b.ld(MemSpace::Global, a, 0, 1)[0];
            let w = b.fadd(v.into(), Operand::ImmF(1.0));
            b.st(MemSpace::Global, a, 0, vec![w.into()]);
        });
        let k = b.finish();
        let params = &[7u32, 0u32];
        assert_eq!(
            instruction_mix(&k, params).unwrap().total(),
            dynamic_instructions(&k, params).unwrap()
        );
    }
}
