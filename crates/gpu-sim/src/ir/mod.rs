//! A small PTX-flavoured kernel IR.
//!
//! Kernels in this workspace are *values* of this IR rather than native Rust
//! closures, because the reproduction needs four different views of the same
//! kernel and they must never drift apart:
//!
//! 1. **functional execution** — the interpreter in [`crate::exec`] runs the
//!    IR against simulated global memory and its results are validated
//!    against native CPU implementations;
//! 2. **dynamic instruction counts** — the paper's Eq. 3 unrolling model is
//!    about the instruction budget of the innermost loop ([`count`]);
//! 3. **register demand** — occupancy depends on registers per thread, which
//!    a liveness analysis computes from the IR ([`regalloc`]);
//! 4. **memory behaviour** — loads/stores carry enough structure for the
//!    coalescer to see the exact per-lane address streams.
//!
//! The IR is structured (straight-line instructions, counted loops, masked
//! `If`, barrier `Sync`); loops are lowered to a linear form with explicit
//! back-branches by [`lower`], charging the canonical per-iteration overhead
//! the paper describes (induction add, compare, jump). The optimization
//! passes the paper applies by hand — full/partial unrolling and invariant
//! code motion — are IR-to-IR passes in [`passes`].

pub mod count;
pub mod layout;
pub mod lower;
pub mod passes;
pub mod pretty;
pub mod regalloc;

use serde::{Deserialize, Serialize};

/// A virtual 32-bit register (holds raw bits; instructions give them f32 or
/// u32 meaning, as in PTX untyped registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reg(pub u16);

/// A predicate (boolean) register. Predicates live in a separate file on
/// NVIDIA hardware and do not count toward the 32-bit register budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pred(pub u16);

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// A register.
    R(Reg),
    /// An `f32` immediate.
    ImmF(f32),
    /// A `u32` immediate.
    ImmU(u32),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::R(r)
    }
}

/// Hardware special registers (1-D launches are all this workspace needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpecialReg {
    /// `threadIdx.x`
    TidX,
    /// `blockIdx.x`
    CtaidX,
    /// `blockDim.x`
    NtidX,
    /// `gridDim.x`
    NctaidX,
}

/// Memory space of a load/store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemSpace {
    /// Device global memory (coalescing applies).
    Global,
    /// Per-block shared memory (bank conflicts apply).
    Shared,
    /// Texture path into global memory (read-only, cached — no coalescing
    /// rules; the pre-Fermi workaround for scattered access patterns).
    Texture,
}

/// Two-operand ALU operations. The `F*` forms operate on f32, the `I*` forms
/// on u32 (wrapping, as GPU integer arithmetic does).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// f32 add.
    FAdd,
    /// f32 subtract.
    FSub,
    /// f32 multiply.
    FMul,
    /// f32 minimum.
    FMin,
    /// f32 maximum.
    FMax,
    /// u32 wrapping add.
    IAdd,
    /// u32 wrapping subtract.
    ISub,
    /// u32 wrapping multiply (low 32 bits).
    IMul,
    /// u32 logical shift left.
    IShl,
    /// u32 bitwise and.
    IAnd,
    /// u32 minimum.
    IMin,
}

impl AluOp {
    /// `true` for the floating-point forms.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            AluOp::FAdd | AluOp::FSub | AluOp::FMul | AluOp::FMin | AluOp::FMax
        )
    }
}

/// One-operand operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnaryOp {
    /// f32 reciprocal square root (SFU instruction).
    FRsqrt,
    /// f32 negate.
    FNeg,
    /// u32→f32 convert.
    U2F,
    /// f32→u32 convert (truncating).
    F2U,
}

/// Comparison predicates for `Setp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// Unsigned less-than.
    ULt,
    /// Unsigned greater-or-equal.
    UGe,
    /// Unsigned equality.
    UEq,
    /// Unsigned inequality.
    UNe,
    /// f32 less-than.
    FLt,
}

/// A straight-line instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Instr {
    /// `dst = src`
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = special register`
    Special {
        /// Destination register.
        dst: Reg,
        /// Which special register to read.
        sr: SpecialReg,
    },
    /// `dst = a <op> b`
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// Fused multiply-add `dst = a*b + c` (f32 `mad.f32` or u32 `mad.lo.u32`).
    Mad {
        /// `true` = f32 mad, `false` = u32 mad.
        float: bool,
        /// Destination register.
        dst: Reg,
        /// Multiplicand.
        a: Operand,
        /// Multiplier.
        b: Operand,
        /// Addend.
        c: Operand,
    },
    /// `dst = op(a)`
    Unary {
        /// Operation.
        op: UnaryOp,
        /// Destination register.
        dst: Reg,
        /// Operand.
        a: Operand,
    },
    /// Set predicate: `dst = a <cmp> b`.
    Setp {
        /// Destination predicate.
        dst: Pred,
        /// Comparison.
        cmp: CmpOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// Load `dsts.len()` consecutive 32-bit words (1, 2 or 4 — scalar,
    /// 64-bit or 128-bit access) from `space` at byte address `base + offset`.
    Ld {
        /// Destination registers (consecutive words).
        dsts: Vec<Reg>,
        /// Memory space.
        space: MemSpace,
        /// Register holding the byte base address.
        base: Reg,
        /// Immediate byte offset.
        offset: u32,
    },
    /// Store consecutive 32-bit words to `space` at `base + offset`.
    St {
        /// Source operands (consecutive words).
        srcs: Vec<Operand>,
        /// Memory space.
        space: MemSpace,
        /// Register holding the byte base address.
        base: Reg,
        /// Immediate byte offset.
        offset: u32,
    },
    /// Read the SM cycle counter (`clock()`).
    Clock {
        /// Destination register.
        dst: Reg,
    },
}

impl Instr {
    /// Destination 32-bit register(s) of this instruction.
    pub fn defs(&self) -> Vec<Reg> {
        match self {
            Instr::Mov { dst, .. }
            | Instr::Special { dst, .. }
            | Instr::Alu { dst, .. }
            | Instr::Mad { dst, .. }
            | Instr::Unary { dst, .. }
            | Instr::Clock { dst } => vec![*dst],
            Instr::Ld { dsts, .. } => dsts.clone(),
            Instr::Setp { .. } | Instr::St { .. } => vec![],
        }
    }

    /// Source registers of this instruction.
    pub fn uses(&self) -> Vec<Reg> {
        fn op(o: &Operand, out: &mut Vec<Reg>) {
            if let Operand::R(r) = o {
                out.push(*r);
            }
        }
        let mut out = Vec::new();
        match self {
            Instr::Mov { src, .. } => op(src, &mut out),
            Instr::Special { .. } | Instr::Clock { .. } => {}
            Instr::Alu { a, b, .. } => {
                op(a, &mut out);
                op(b, &mut out);
            }
            Instr::Mad { a, b, c, .. } => {
                op(a, &mut out);
                op(b, &mut out);
                op(c, &mut out);
            }
            Instr::Unary { a, .. } => op(a, &mut out),
            Instr::Setp { a, b, .. } => {
                op(a, &mut out);
                op(b, &mut out);
            }
            Instr::Ld { base, .. } => out.push(*base),
            Instr::St { srcs, base, .. } => {
                for s in srcs {
                    op(s, &mut out);
                }
                out.push(*base);
            }
        }
        out
    }
}

/// A structured statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// A straight-line instruction.
    I(Instr),
    /// Counted loop `for (var = start; var < end; var += step) body`.
    ///
    /// Lowered as a bottom-tested loop charging the canonical 3-instruction
    /// per-iteration overhead (induction add, compare, branch). The loop must
    /// execute at least one iteration (`start < end` at entry) and `end` must
    /// be warp-uniform; both are checked at execution time.
    For {
        /// Induction variable (a real register — it costs occupancy, which
        /// is exactly the paper's point about unrolling freeing it).
        var: Reg,
        /// Initial value.
        start: Operand,
        /// Exclusive upper bound (must be warp-uniform at runtime).
        end: Operand,
        /// Increment (immediate, as in the paper's kernels).
        step: u32,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Masked conditional: threads where `pred`(≠`negate`) holds run `then`,
    /// the rest run `els`. Divergence serializes both paths, as on hardware.
    If {
        /// Controlling predicate.
        pred: Pred,
        /// If `true`, the sense of the predicate is inverted.
        negate: bool,
        /// Taken-path body.
        then: Vec<Stmt>,
        /// Not-taken-path body.
        els: Vec<Stmt>,
    },
    /// Block-wide barrier (`__syncthreads()`).
    Sync,
    /// Divergent bottom-tested loop: execute `body`, then keep iterating the
    /// lanes where `pred` (xor `negate`) still holds; a lane that clears the
    /// predicate is masked off until every lane of the warp is done — the
    /// SIMT cost model of data-dependent loops (tree traversals, etc.).
    /// The body must define `pred` before it is tested.
    While {
        /// Continuation predicate, set inside the body.
        pred: Pred,
        /// Invert the predicate sense.
        negate: bool,
        /// Loop body.
        body: Vec<Stmt>,
    },
}

/// A complete kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Name for reports.
    pub name: String,
    /// Number of parameters; parameters are bound to registers
    /// `Reg(0) .. Reg(n_params)` at launch (they are live from entry, which
    /// matches nvcc moving them from param space into registers on use).
    pub n_params: u16,
    /// Total virtual registers (including parameter registers).
    pub n_regs: u16,
    /// Total predicate registers.
    pub n_preds: u16,
    /// Static shared memory per block, in bytes.
    pub smem_bytes: u32,
    /// Kernel body.
    pub body: Vec<Stmt>,
}

impl Kernel {
    /// Walk all statements depth-first, calling `f` on each.
    pub fn visit_stmts<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        fn walk<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
            for s in stmts {
                f(s);
                match s {
                    Stmt::For { body, .. } | Stmt::While { body, .. } => walk(body, f),
                    Stmt::If { then, els, .. } => {
                        walk(then, f);
                        walk(els, f);
                    }
                    _ => {}
                }
            }
        }
        walk(&self.body, f);
    }

    /// Highest register index actually referenced, for sanity checks.
    pub fn max_reg_referenced(&self) -> u16 {
        let mut max = 0u16;
        self.visit_stmts(&mut |s| {
            let mut track = |r: Reg| max = max.max(r.0);
            match s {
                Stmt::I(i) => {
                    for r in i.defs() {
                        track(r);
                    }
                    for r in i.uses() {
                        track(r);
                    }
                }
                Stmt::For {
                    var, start, end, ..
                } => {
                    track(*var);
                    for o in [start, end] {
                        if let Operand::R(r) = o {
                            track(*r);
                        }
                    }
                }
                _ => {}
            }
        });
        max
    }

    /// Validate well-formedness: register/predicate indices in range.
    pub fn validate(&self) {
        assert!(self.n_regs as u32 >= self.n_params as u32);
        assert!(
            self.max_reg_referenced() < self.n_regs || self.n_regs == 0,
            "kernel {} references register beyond n_regs={}",
            self.name,
            self.n_regs
        );
    }
}

/// Assigns the **stable instruction indices** used in diagnostic coordinates.
///
/// The pretty-printer ([`pretty::disassemble`]) and the static analyzer
/// (`crate::analyze`) both walk a kernel in structured pre-order and draw
/// indices from this counter, so a diagnostic's `instruction` coordinate can
/// be read straight off the disassembly. The numbering mirrors the
/// functional executor's retired-instruction counter for the first dynamic
/// execution of each statement: only items that retire are numbered — plain
/// instructions, a `For`'s lowered init `mov` plus its `add`/`setp`/`bra`
/// latch triple (after the body), and a `While`'s backedge branch (after the
/// body). `If` markers and `Sync` barriers retire nothing and get no index
/// (see `exec::functional`).
#[derive(Debug, Clone, Default)]
pub struct InstrIndexer {
    next: u64,
}

impl InstrIndexer {
    /// Start numbering at zero.
    pub fn new() -> InstrIndexer {
        InstrIndexer::default()
    }

    /// Index of the next plain instruction (also a `For`'s init `mov`).
    pub fn instr(&mut self) -> u64 {
        let i = self.next;
        self.next += 1;
        i
    }

    /// Indices of a `For` latch, in order: the induction `add`, the bound
    /// `setp`, the backedge `bra`. Call after indexing the loop body.
    pub fn for_latch(&mut self) -> (u64, u64, u64) {
        (self.instr(), self.instr(), self.instr())
    }

    /// Index of a `While` backedge branch. Call after indexing the body.
    pub fn while_backedge(&mut self) -> u64 {
        self.instr()
    }
}

mod builder;
pub use builder::KernelBuilder;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defs_and_uses_of_core_instructions() {
        let i = Instr::Alu {
            op: AluOp::FAdd,
            dst: Reg(3),
            a: Operand::R(Reg(1)),
            b: Operand::ImmF(1.0),
        };
        assert_eq!(i.defs(), vec![Reg(3)]);
        assert_eq!(i.uses(), vec![Reg(1)]);

        let ld = Instr::Ld {
            dsts: vec![Reg(4), Reg(5)],
            space: MemSpace::Global,
            base: Reg(2),
            offset: 8,
        };
        assert_eq!(ld.defs(), vec![Reg(4), Reg(5)]);
        assert_eq!(ld.uses(), vec![Reg(2)]);

        let st = Instr::St {
            srcs: vec![Operand::R(Reg(7)), Operand::ImmF(0.0)],
            space: MemSpace::Shared,
            base: Reg(6),
            offset: 0,
        };
        assert_eq!(st.defs(), vec![]);
        assert_eq!(st.uses(), vec![Reg(7), Reg(6)]);
    }

    #[test]
    fn visit_descends_into_loops_and_ifs() {
        let k = Kernel {
            name: "t".into(),
            n_params: 0,
            n_regs: 4,
            n_preds: 1,
            smem_bytes: 0,
            body: vec![
                Stmt::For {
                    var: Reg(0),
                    start: Operand::ImmU(0),
                    end: Operand::ImmU(4),
                    step: 1,
                    body: vec![
                        Stmt::I(Instr::Mov {
                            dst: Reg(1),
                            src: Operand::ImmU(1),
                        }),
                        Stmt::If {
                            pred: Pred(0),
                            negate: false,
                            then: vec![Stmt::I(Instr::Mov {
                                dst: Reg(2),
                                src: Operand::ImmU(2),
                            })],
                            els: vec![],
                        },
                    ],
                },
                Stmt::Sync,
            ],
        };
        let mut n = 0;
        k.visit_stmts(&mut |_| n += 1);
        assert_eq!(n, 5); // For, Mov, If, inner Mov, Sync
        assert_eq!(k.max_reg_referenced(), 2);
        k.validate();
    }

    #[test]
    #[should_panic]
    fn validate_catches_out_of_range_register() {
        let k = Kernel {
            name: "bad".into(),
            n_params: 0,
            n_regs: 1,
            n_preds: 0,
            smem_bytes: 0,
            body: vec![Stmt::I(Instr::Mov {
                dst: Reg(5),
                src: Operand::ImmU(0),
            })],
        };
        k.validate();
    }
}
