//! Lowering structured kernels to a linear executable form.
//!
//! A [`Kernel`]'s structured body is compiled into a [`Program`]: an arena of
//! instruction sequences with explicit uniform back-branches for loops and
//! nested masked regions for `If`. A `For` loop lowers to the canonical
//! bottom-tested form —
//!
//! ```text
//!     mov   var, start
//! top:
//!     ...body...
//!     add   var, var, step      ; induction add        ┐
//!     setp  p, var < end        ; compare              ├ the 3-instruction
//!     bra   p, top              ; jump                 ┘ overhead of Sec. IV-A
//! ```
//!
//! — which is exactly the per-iteration overhead (one add, one compare, one
//! jump, plus the address add inside the body) the paper's unrolling analysis
//! eliminates. The lowered form executes at least one iteration; all loops in
//! this workspace have statically positive trip counts, and the executor
//! asserts uniformity of the branch predicate.

use super::*;

/// A lowered statement.
#[derive(Debug, Clone, PartialEq)]
pub enum LinStmt {
    /// A plain instruction.
    I(Instr),
    /// Uniform conditional branch within the same sequence: taken when the
    /// predicate (xor `negate`) holds. All active threads of the warp must
    /// agree (checked at execution).
    Bra {
        /// Controlling predicate.
        pred: Pred,
        /// Invert the predicate sense.
        negate: bool,
        /// Index of the branch target within the same sequence.
        target: usize,
    },
    /// Masked structured conditional: sub-sequences execute under the thread
    /// mask; divergence serializes both paths.
    IfMasked {
        /// Controlling predicate.
        pred: Pred,
        /// Invert the predicate sense.
        negate: bool,
        /// Arena index of the taken-path sequence.
        then_seq: usize,
        /// Arena index of the else-path sequence.
        else_seq: usize,
    },
    /// Block barrier.
    Sync,
    /// Divergent masked loop: the sub-sequence re-executes with the mask
    /// narrowed to the lanes whose predicate still holds, until none remain.
    WhileMasked {
        /// Continuation predicate (set inside the body).
        pred: Pred,
        /// Invert the predicate sense.
        negate: bool,
        /// Arena index of the body sequence.
        body_seq: usize,
    },
}

/// A lowered, executable kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Kernel name.
    pub name: String,
    /// Sequence arena; `seqs[root]` is the kernel body.
    pub seqs: Vec<Vec<LinStmt>>,
    /// Index of the entry sequence.
    pub root: usize,
    /// Number of launch parameters (bound to `Reg(0)..`).
    pub n_params: u16,
    /// Total 32-bit virtual registers.
    pub n_regs: u16,
    /// Total predicate registers (kernel predicates + one per lowered loop).
    pub n_preds: u16,
    /// Static shared memory bytes per block.
    pub smem_bytes: u32,
}

struct Lowerer {
    seqs: Vec<Vec<LinStmt>>,
    next_pred: u16,
}

impl Lowerer {
    fn lower_body(&mut self, stmts: &[Stmt]) -> usize {
        let id = self.seqs.len();
        self.seqs.push(Vec::new());
        let mut out = Vec::new();
        self.lower_into(stmts, &mut out);
        self.seqs[id] = out;
        id
    }

    fn lower_into(&mut self, stmts: &[Stmt], out: &mut Vec<LinStmt>) {
        for s in stmts {
            match s {
                Stmt::I(i) => out.push(LinStmt::I(i.clone())),
                Stmt::Sync => out.push(LinStmt::Sync),
                Stmt::For {
                    var,
                    start,
                    end,
                    step,
                    body,
                } => {
                    out.push(LinStmt::I(Instr::Mov {
                        dst: *var,
                        src: *start,
                    }));
                    let top = out.len();
                    self.lower_into(body, out);
                    out.push(LinStmt::I(Instr::Alu {
                        op: AluOp::IAdd,
                        dst: *var,
                        a: Operand::R(*var),
                        b: Operand::ImmU(*step),
                    }));
                    let p = Pred(self.next_pred);
                    self.next_pred += 1;
                    out.push(LinStmt::I(Instr::Setp {
                        dst: p,
                        cmp: CmpOp::ULt,
                        a: Operand::R(*var),
                        b: *end,
                    }));
                    out.push(LinStmt::Bra {
                        pred: p,
                        negate: false,
                        target: top,
                    });
                }
                Stmt::If {
                    pred,
                    negate,
                    then,
                    els,
                } => {
                    let then_seq = self.lower_body(then);
                    let else_seq = self.lower_body(els);
                    out.push(LinStmt::IfMasked {
                        pred: *pred,
                        negate: *negate,
                        then_seq,
                        else_seq,
                    });
                }
                Stmt::While { pred, negate, body } => {
                    let body_seq = self.lower_body(body);
                    out.push(LinStmt::WhileMasked {
                        pred: *pred,
                        negate: *negate,
                        body_seq,
                    });
                }
            }
        }
    }
}

/// Lower a kernel to its executable [`Program`].
pub fn lower(kernel: &Kernel) -> Program {
    kernel.validate();
    let mut l = Lowerer {
        seqs: Vec::new(),
        next_pred: kernel.n_preds,
    };
    // Reserve the root slot first so nested sequences come after it.
    let root = l.lower_body(&kernel.body);
    Program {
        name: kernel.name.clone(),
        seqs: l.seqs,
        root,
        n_params: kernel.n_params,
        n_regs: kernel.n_regs,
        n_preds: l.next_pred,
        smem_bytes: kernel.smem_bytes,
    }
}

impl Program {
    /// Total lowered instructions (static), across all sequences; branches
    /// count as instructions, `Sync`/`IfMasked` markers do not.
    pub fn static_instr_count(&self) -> usize {
        self.seqs
            .iter()
            .flatten()
            .filter(|s| matches!(s, LinStmt::I(_) | LinStmt::Bra { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::KernelBuilder;

    #[test]
    fn straight_line_lowers_one_to_one() {
        let mut b = KernelBuilder::new("sl");
        let r = b.mov(Operand::ImmU(1));
        b.iadd(r.into(), Operand::ImmU(2));
        let p = lower(&b.finish());
        assert_eq!(p.seqs.len(), 1);
        assert_eq!(p.seqs[p.root].len(), 2);
    }

    #[test]
    fn for_loop_lowers_to_bottom_tested_form() {
        let mut b = KernelBuilder::new("loop");
        b.for_loop(Operand::ImmU(0), Operand::ImmU(4), 1, |b, _i| {
            b.mov(Operand::ImmF(1.0));
        });
        let k = b.finish();
        let p = lower(&k);
        let seq = &p.seqs[p.root];
        // mov var, body-mov, add, setp, bra
        assert_eq!(seq.len(), 5);
        assert!(matches!(seq[0], LinStmt::I(Instr::Mov { .. })));
        assert!(matches!(
            seq[2],
            LinStmt::I(Instr::Alu {
                op: AluOp::IAdd,
                ..
            })
        ));
        assert!(matches!(seq[3], LinStmt::I(Instr::Setp { .. })));
        match seq[4] {
            LinStmt::Bra { target, .. } => assert_eq!(target, 1),
            ref other => panic!("expected Bra, got {other:?}"),
        }
        // The loop predicate was allocated during lowering.
        assert_eq!(p.n_preds, k.n_preds + 1);
    }

    #[test]
    fn per_iteration_overhead_is_exactly_three_instructions() {
        // The claim the unrolling analysis rests on.
        let mut b = KernelBuilder::new("ovh");
        b.for_loop(Operand::ImmU(0), Operand::ImmU(8), 1, |b, _| {
            b.mov(Operand::ImmF(0.0));
        });
        let p = lower(&b.finish());
        let seq = &p.seqs[p.root];
        let body_instrs = 1; // the single mov
        let non_body = seq.len() - body_instrs - 1; // minus loop-init mov
        assert_eq!(non_body, 3, "add + setp + bra");
    }

    #[test]
    fn if_lowers_to_masked_subsequences() {
        let mut b = KernelBuilder::new("if");
        let x = b.mov(Operand::ImmU(1));
        let pr = b.setp(CmpOp::ULt, x.into(), Operand::ImmU(5));
        b.if_else(
            pr,
            |b| {
                b.mov(Operand::ImmU(2));
            },
            |b| {
                b.mov(Operand::ImmU(3));
            },
        );
        let p = lower(&b.finish());
        let root = &p.seqs[p.root];
        match root.last().unwrap() {
            LinStmt::IfMasked {
                then_seq, else_seq, ..
            } => {
                assert_eq!(p.seqs[*then_seq].len(), 1);
                assert_eq!(p.seqs[*else_seq].len(), 1);
            }
            other => panic!("expected IfMasked, got {other:?}"),
        }
    }

    #[test]
    fn nested_loops_lower_into_one_sequence() {
        let mut b = KernelBuilder::new("nest");
        b.for_loop(Operand::ImmU(0), Operand::ImmU(2), 1, |b, _| {
            b.for_loop(Operand::ImmU(0), Operand::ImmU(3), 1, |b, _| {
                b.mov(Operand::ImmF(0.0));
            });
        });
        let p = lower(&b.finish());
        assert_eq!(p.seqs.len(), 1, "loops need no sub-sequences");
        // outer mov + (inner mov + body + 3) + 3
        assert_eq!(p.seqs[p.root].len(), 1 + 1 + 1 + 3 + 3);
    }
}
