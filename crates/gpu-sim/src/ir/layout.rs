//! Data-layout rewriting: an IR→IR pass that re-homes global buffers.
//!
//! The paper's ladder (AoS → SoA → AoaS → SoAoaS, Sec. III) is a sequence of
//! *data-layout* changes: the kernel text barely moves, but the particle
//! record is split, padded and regrouped so each half-warp touches fewer
//! memory segments. [`rewrite_layout`] performs that change mechanically on a
//! kernel value: given a [`LayoutRewrite`] spec — which leading parameters
//! are buffer bases, what the old record stride is, and where every *read*
//! word of the old record lives in the new layout — it
//!
//! 1. recognizes the canonical addressing idiom the workspace kernels (and
//!    `fold_addressing`) produce, `mad.lo.u32 addr, elem, stride, buf_param`
//!    feeding `ld.global` at immediate offsets,
//! 2. regroups the loaded words by their new homes, merging contiguous words
//!    of one new buffer into the widest naturally-aligned vector load
//!    (128/64/32-bit), and
//! 3. rebinds the parameter list: the old buffer params vanish, the new
//!    buffer params take their place, and every other register shifts.
//!
//! The pass is *deliberately* not trusted: it refuses anything outside the
//! idiom (an address escaping into non-load arithmetic, a store into a
//! rewritten buffer, a read of a word the spec does not map), and the layout
//! synthesizer ([`crate::analyze::synth`]) only ever suggests a rewrite after
//! [`crate::analyze::verify`] proves the result bit-equivalent under an
//! element-indexed input map. A rewrite that cannot be proven is discarded.

use std::collections::{HashMap, HashSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use super::{Instr, Kernel, MemSpace, Operand, Reg, Stmt};

/// Where one 32-bit word of the old record lives in the new layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldDest {
    /// Index into [`LayoutRewrite::new_strides`] (and the new parameter
    /// list) of the buffer that now holds this word.
    pub buffer: usize,
    /// Byte offset of the word inside the new buffer's record.
    pub offset: u32,
}

/// The word map for one old buffer parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferMap {
    /// Old parameter index (`< LayoutRewrite::old_buffers`).
    pub param: u16,
    /// Old record stride in bytes — the `b` immediate of the addressing
    /// `mad` this pass matches.
    pub stride: u32,
    /// `(old byte offset in record, new home)` for every word the kernel
    /// is allowed to read. Words a kernel reads but the map omits make the
    /// rewrite fail with [`LayoutRewriteError::UnmappedWord`].
    pub words: Vec<(u32, FieldDest)>,
}

impl BufferMap {
    fn dest(&self, offset: u32) -> Option<FieldDest> {
        self.words
            .iter()
            .find(|(o, _)| *o == offset)
            .map(|(_, d)| *d)
    }
}

/// A complete layout-rewrite specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayoutRewrite {
    /// Suffix appended to the kernel name (`name__tag`) for reports.
    pub tag: String,
    /// The first `old_buffers` kernel parameters are buffer bases being
    /// replaced.
    pub old_buffers: u16,
    /// Record stride of each new buffer, in bytes. The new buffers become
    /// parameters `0 .. new_strides.len()` of the rewritten kernel; all
    /// remaining parameters keep their relative order after them.
    pub new_strides: Vec<u32>,
    /// One word map per replaced parameter.
    pub maps: Vec<BufferMap>,
}

impl LayoutRewrite {
    /// New home of `(old param, old byte offset)`, if mapped.
    pub fn dest(&self, param: u16, offset: u32) -> Option<FieldDest> {
        self.maps
            .iter()
            .find(|m| m.param == param)
            .and_then(|m| m.dest(offset))
    }

    /// `true` when the rewrite maps every word to exactly where it already
    /// is — same buffer count, same strides, same offsets. Identity
    /// rewrites are never worth suggesting.
    pub fn is_identity(&self) -> bool {
        self.new_strides.len() == self.old_buffers as usize
            && self.maps.iter().all(|m| {
                (m.param as usize) < self.new_strides.len()
                    && self.new_strides[m.param as usize] == m.stride
                    && m.words
                        .iter()
                        .all(|(o, d)| d.buffer == m.param as usize && d.offset == *o)
            })
    }

    /// Total bytes per element in the new layout (sum of strides).
    pub fn bytes_per_element(&self) -> u32 {
        self.new_strides.iter().sum()
    }
}

/// Why a layout rewrite was refused. Every variant is a *refusal*, not a
/// miscompile: the input kernel is returned unmodified semantics-wise
/// because no kernel is returned at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutRewriteError {
    /// The spec itself is malformed (stride/offset/alignment/coverage).
    BadSpec(String),
    /// The kernel reads a word of a rewritten buffer the spec does not map.
    UnmappedWord {
        /// Old buffer parameter.
        param: u16,
        /// Old byte offset of the unmapped word.
        offset: u32,
    },
    /// A replaced buffer parameter is used outside the matched addressing
    /// idiom (so the rewrite cannot account for it).
    ResidualParamUse {
        /// The offending parameter index.
        param: u16,
    },
    /// A matched buffer address flows into something other than a load
    /// (store, arithmetic, loop bound) — rewriting would change it.
    AddressEscapes {
        /// The old register holding the escaped address.
        reg: u16,
    },
}

impl fmt::Display for LayoutRewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutRewriteError::BadSpec(s) => write!(f, "bad layout-rewrite spec: {s}"),
            LayoutRewriteError::UnmappedWord { param, offset } => write!(
                f,
                "kernel reads word at byte {offset} of buffer param {param}, which the \
                 rewrite does not map"
            ),
            LayoutRewriteError::ResidualParamUse { param } => write!(
                f,
                "buffer param {param} is used outside the `mad elem, stride, param` \
                 addressing idiom"
            ),
            LayoutRewriteError::AddressEscapes { reg } => write!(
                f,
                "address register r{reg} of a rewritten buffer escapes into a non-load"
            ),
        }
    }
}

impl std::error::Error for LayoutRewriteError {}

/// One load word waiting to be regrouped at the next flush point.
struct PendWord {
    /// Element-index register (old numbering).
    elem: Reg,
    /// New buffer index.
    buffer: usize,
    /// New byte offset inside the record.
    offset: u32,
    /// Destination register (old numbering).
    dst: Reg,
}

struct Rewriter<'a> {
    rw: &'a LayoutRewrite,
    map_for: HashMap<u16, &'a BufferMap>,
    delta: i32,
    next_reg: u16,
}

type RwResult<T> = Result<T, LayoutRewriteError>;

impl<'a> Rewriter<'a> {
    fn remap(&self, r: Reg) -> RwResult<Reg> {
        if r.0 < self.rw.old_buffers {
            Err(LayoutRewriteError::ResidualParamUse { param: r.0 })
        } else {
            Ok(Reg((r.0 as i32 + self.delta) as u16))
        }
    }

    fn remap_op(&self, o: Operand) -> RwResult<Operand> {
        Ok(match o {
            Operand::R(r) => Operand::R(self.remap(r)?),
            imm => imm,
        })
    }

    fn fresh(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Emit the regrouped loads for the pending words: sort by
    /// `(elem, buffer, offset)`, merge maximal contiguous same-elem runs
    /// into the widest naturally-aligned vector loads, value-numbering one
    /// `mad` base per `(buffer, elem)`.
    fn flush(
        &mut self,
        pending: &mut Vec<PendWord>,
        base_vn: &mut HashMap<(usize, Reg), Reg>,
        out: &mut Vec<Stmt>,
    ) -> RwResult<()> {
        if pending.is_empty() {
            return Ok(());
        }
        pending.sort_by_key(|w| (w.elem, w.buffer, w.offset));
        let mut i = 0;
        while i < pending.len() {
            let (elem, buffer) = (pending[i].elem, pending[i].buffer);
            let mut run = vec![&pending[i]];
            while i + run.len() < pending.len() {
                let next = &pending[i + run.len()];
                if next.elem == elem
                    && next.buffer == buffer
                    && next.offset == run.last().expect("run is non-empty").offset + 4
                {
                    run.push(next);
                } else {
                    break;
                }
            }
            let stride = self.rw.new_strides[buffer];
            let elem_new = self.remap(elem)?;
            let base = match base_vn.get(&(buffer, elem_new)) {
                Some(&b) => b,
                None => {
                    let b = self.fresh();
                    out.push(Stmt::I(Instr::Mad {
                        float: false,
                        dst: b,
                        a: Operand::R(elem_new),
                        b: Operand::ImmU(stride),
                        c: Operand::R(Reg(buffer as u16)),
                    }));
                    base_vn.insert((buffer, elem_new), b);
                    b
                }
            };
            // Widest natural vector width legal for this run: the width
            // must divide the run, the start offset, and the stride, so
            // every element's address stays naturally aligned (buffer
            // bases are 16-byte aligned by the allocator).
            let mut at = 0;
            while at < run.len() {
                let off = run[at].offset;
                let width = [4usize, 2, 1]
                    .into_iter()
                    .find(|w| {
                        at + w <= run.len()
                            && off % (4 * *w as u32) == 0
                            && stride.is_multiple_of(4 * *w as u32)
                    })
                    .expect("width 1 is always legal");
                let mut dsts = Vec::with_capacity(width);
                for w in &run[at..at + width] {
                    dsts.push(self.remap(w.dst)?);
                }
                out.push(Stmt::I(Instr::Ld {
                    dsts,
                    space: MemSpace::Global,
                    base,
                    offset: off,
                }));
                at += width;
            }
            i += run.len();
        }
        pending.clear();
        Ok(())
    }

    /// Rewrite one statement list. Matching facts are segment-local: any
    /// compound statement or barrier flushes pending loads and forgets
    /// everything, exactly like `fold_addressing`'s segments.
    fn block(&mut self, stmts: &[Stmt]) -> RwResult<Vec<Stmt>> {
        let mut out = Vec::with_capacity(stmts.len());
        // dst → (elem reg, old param) for matched addressing mads.
        let mut facts: HashMap<Reg, (Reg, u16)> = HashMap::new();
        // Old registers whose defining mad was consumed; any use outside a
        // matched load means the address escapes.
        let mut dropped: HashSet<Reg> = HashSet::new();
        let mut pending: Vec<PendWord> = Vec::new();
        let mut base_vn: HashMap<(usize, Reg), Reg> = HashMap::new();

        let invalidate_def = |d: Reg,
                              facts: &mut HashMap<Reg, (Reg, u16)>,
                              base_vn: &mut HashMap<(usize, Reg), Reg>,
                              dropped: &mut HashSet<Reg>,
                              delta: i32| {
            facts.remove(&d);
            facts.retain(|_, (elem, _)| *elem != d);
            let d_new = Reg((d.0 as i32 + delta) as u16);
            base_vn.retain(|(_, elem), _| *elem != d_new);
            dropped.remove(&d);
        };

        for s in stmts {
            match s {
                Stmt::I(instr) => {
                    // The addressing idiom: mad.lo.u32 dst, elem, stride, buf.
                    if let Instr::Mad {
                        float: false,
                        dst,
                        a: Operand::R(elem),
                        b: Operand::ImmU(stride),
                        c: Operand::R(p),
                    } = instr
                    {
                        if p.0 < self.rw.old_buffers {
                            if elem == dst {
                                // `dst = dst*stride + buf` consumes the
                                // element index; nothing to re-derive the
                                // base from.
                                return Err(LayoutRewriteError::ResidualParamUse { param: p.0 });
                            }
                            let m = self.map_for[&p.0];
                            if *stride != m.stride {
                                return Err(LayoutRewriteError::BadSpec(format!(
                                    "param {} addressed with stride {stride}, map says {}",
                                    p.0, m.stride
                                )));
                            }
                            if elem.0 < self.rw.old_buffers {
                                return Err(LayoutRewriteError::ResidualParamUse { param: elem.0 });
                            }
                            if dropped.contains(elem) {
                                return Err(LayoutRewriteError::AddressEscapes { reg: elem.0 });
                            }
                            // The mad redefines dst — anything pending that
                            // reads or writes dst must land first.
                            if pending.iter().any(|w| w.elem == *dst || w.dst == *dst) {
                                self.flush(&mut pending, &mut base_vn, &mut out)?;
                            }
                            invalidate_def(
                                *dst,
                                &mut facts,
                                &mut base_vn,
                                &mut dropped,
                                self.delta,
                            );
                            facts.insert(*dst, (*elem, p.0));
                            dropped.insert(*dst);
                            continue;
                        }
                    }
                    // A load through a matched address: queue its words.
                    if let Instr::Ld {
                        dsts,
                        space: MemSpace::Global,
                        base,
                        offset,
                    } = instr
                    {
                        if let Some(&(elem, param)) = facts.get(base) {
                            let m = self.map_for[&param];
                            // A queued word must land before its dst is
                            // redefined or its elem is clobbered.
                            if dsts
                                .iter()
                                .any(|d| pending.iter().any(|w| w.elem == *d || w.dst == *d))
                            {
                                self.flush(&mut pending, &mut base_vn, &mut out)?;
                            }
                            let mut words = Vec::with_capacity(dsts.len());
                            for (w, dst) in dsts.iter().enumerate() {
                                let old_off = offset + 4 * w as u32;
                                let dest =
                                    m.dest(old_off).ok_or(LayoutRewriteError::UnmappedWord {
                                        param,
                                        offset: old_off,
                                    })?;
                                words.push(PendWord {
                                    elem,
                                    buffer: dest.buffer,
                                    offset: dest.offset,
                                    dst: *dst,
                                });
                            }
                            let dup = words.iter().any(|nw| {
                                pending.iter().any(|w| {
                                    w.elem == nw.elem
                                        && w.buffer == nw.buffer
                                        && w.offset == nw.offset
                                })
                            });
                            if dup {
                                self.flush(&mut pending, &mut base_vn, &mut out)?;
                            }
                            for w in &words {
                                invalidate_def(
                                    w.dst,
                                    &mut facts,
                                    &mut base_vn,
                                    &mut dropped,
                                    self.delta,
                                );
                            }
                            let clobbers_elem = dsts.contains(&elem);
                            pending.extend(words);
                            if clobbers_elem {
                                // The load overwrites its own element
                                // index; emit the regrouped load here,
                                // while the index still holds.
                                self.flush(&mut pending, &mut base_vn, &mut out)?;
                            }
                            continue;
                        }
                    }
                    // Anything else: pending loads land first, then the
                    // instruction is remapped verbatim. A use of a consumed
                    // address register means the address escaped the idiom.
                    self.flush(&mut pending, &mut base_vn, &mut out)?;
                    for u in instr.uses() {
                        if dropped.contains(&u) {
                            return Err(LayoutRewriteError::AddressEscapes { reg: u.0 });
                        }
                    }
                    let remapped = self.remap_instr(instr)?;
                    for d in instr.defs() {
                        invalidate_def(d, &mut facts, &mut base_vn, &mut dropped, self.delta);
                    }
                    out.push(Stmt::I(remapped));
                }
                Stmt::For {
                    var,
                    start,
                    end,
                    step,
                    body,
                } => {
                    self.flush(&mut pending, &mut base_vn, &mut out)?;
                    facts.clear();
                    base_vn.clear();
                    for o in [start, end] {
                        if let Operand::R(r) = o {
                            if dropped.contains(r) {
                                return Err(LayoutRewriteError::AddressEscapes { reg: r.0 });
                            }
                        }
                    }
                    let new_body = self.block(body)?;
                    dropped.remove(var);
                    out.push(Stmt::For {
                        var: self.remap(*var)?,
                        start: self.remap_op(*start)?,
                        end: self.remap_op(*end)?,
                        step: *step,
                        body: new_body,
                    });
                }
                Stmt::If {
                    pred,
                    negate,
                    then,
                    els,
                } => {
                    self.flush(&mut pending, &mut base_vn, &mut out)?;
                    facts.clear();
                    base_vn.clear();
                    out.push(Stmt::If {
                        pred: *pred,
                        negate: *negate,
                        then: self.block(then)?,
                        els: self.block(els)?,
                    });
                }
                Stmt::While { pred, negate, body } => {
                    self.flush(&mut pending, &mut base_vn, &mut out)?;
                    facts.clear();
                    base_vn.clear();
                    out.push(Stmt::While {
                        pred: *pred,
                        negate: *negate,
                        body: self.block(body)?,
                    });
                }
                Stmt::Sync => {
                    self.flush(&mut pending, &mut base_vn, &mut out)?;
                    facts.clear();
                    base_vn.clear();
                    out.push(Stmt::Sync);
                }
            }
        }
        self.flush(&mut pending, &mut base_vn, &mut out)?;
        Ok(out)
    }

    fn remap_instr(&self, i: &Instr) -> RwResult<Instr> {
        Ok(match i {
            Instr::Mov { dst, src } => Instr::Mov {
                dst: self.remap(*dst)?,
                src: self.remap_op(*src)?,
            },
            Instr::Special { dst, sr } => Instr::Special {
                dst: self.remap(*dst)?,
                sr: *sr,
            },
            Instr::Alu { op, dst, a, b } => Instr::Alu {
                op: *op,
                dst: self.remap(*dst)?,
                a: self.remap_op(*a)?,
                b: self.remap_op(*b)?,
            },
            Instr::Mad {
                float,
                dst,
                a,
                b,
                c,
            } => Instr::Mad {
                float: *float,
                dst: self.remap(*dst)?,
                a: self.remap_op(*a)?,
                b: self.remap_op(*b)?,
                c: self.remap_op(*c)?,
            },
            Instr::Unary { op, dst, a } => Instr::Unary {
                op: *op,
                dst: self.remap(*dst)?,
                a: self.remap_op(*a)?,
            },
            Instr::Setp { dst, cmp, a, b } => Instr::Setp {
                dst: *dst,
                cmp: *cmp,
                a: self.remap_op(*a)?,
                b: self.remap_op(*b)?,
            },
            Instr::Ld {
                dsts,
                space,
                base,
                offset,
            } => Instr::Ld {
                dsts: dsts
                    .iter()
                    .map(|d| self.remap(*d))
                    .collect::<RwResult<_>>()?,
                space: *space,
                base: self.remap(*base)?,
                offset: *offset,
            },
            Instr::St {
                srcs,
                space,
                base,
                offset,
            } => Instr::St {
                srcs: srcs
                    .iter()
                    .map(|s| self.remap_op(*s))
                    .collect::<RwResult<_>>()?,
                space: *space,
                base: self.remap(*base)?,
                offset: *offset,
            },
            Instr::Clock { dst } => Instr::Clock {
                dst: self.remap(*dst)?,
            },
        })
    }
}

fn check_spec(kernel: &Kernel, rw: &LayoutRewrite) -> RwResult<()> {
    let bad = |s: String| Err(LayoutRewriteError::BadSpec(s));
    if rw.old_buffers == 0 {
        return bad("old_buffers must be >= 1".into());
    }
    if rw.old_buffers > kernel.n_params {
        return bad(format!(
            "old_buffers={} exceeds kernel n_params={}",
            rw.old_buffers, kernel.n_params
        ));
    }
    if rw.new_strides.is_empty() {
        return bad("no new buffers".into());
    }
    for (i, &s) in rw.new_strides.iter().enumerate() {
        if s == 0 || s % 4 != 0 {
            return bad(format!(
                "new buffer {i} stride {s} not a positive word multiple"
            ));
        }
    }
    let mut seen_params = HashSet::new();
    let mut seen_dests = HashSet::new();
    for m in &rw.maps {
        if m.param >= rw.old_buffers {
            return bad(format!("map for param {} outside old_buffers", m.param));
        }
        if !seen_params.insert(m.param) {
            return bad(format!("duplicate map for param {}", m.param));
        }
        if m.stride == 0 || m.stride % 4 != 0 {
            return bad(format!(
                "old stride {} of param {} not a positive word multiple",
                m.stride, m.param
            ));
        }
        for &(o, d) in &m.words {
            if o % 4 != 0 || o + 4 > m.stride {
                return bad(format!(
                    "old offset {o} outside record of param {}",
                    m.param
                ));
            }
            if d.buffer >= rw.new_strides.len() {
                return bad(format!("dest buffer {} does not exist", d.buffer));
            }
            if d.offset % 4 != 0 || d.offset + 4 > rw.new_strides[d.buffer] {
                return bad(format!(
                    "dest offset {} outside new buffer {} (stride {})",
                    d.offset, d.buffer, rw.new_strides[d.buffer]
                ));
            }
            if !seen_dests.insert((d.buffer, d.offset)) {
                return bad(format!(
                    "two words map to buffer {} offset {}",
                    d.buffer, d.offset
                ));
            }
        }
    }
    if seen_params.len() != rw.old_buffers as usize {
        return bad(format!(
            "maps cover {} of {} replaced params",
            seen_params.len(),
            rw.old_buffers
        ));
    }
    Ok(())
}

/// Apply a [`LayoutRewrite`] to a kernel, or refuse with a precise reason.
///
/// On success the returned kernel takes `new_strides.len()` buffer-base
/// parameters followed by the original non-buffer parameters in order, and
/// every read of a rewritten buffer goes through regrouped, naturally
/// aligned loads of the new record. The result is only as trustworthy as
/// the caller's verification: run it through
/// [`verify_equiv`](crate::analyze::verify::verify_equiv) with an
/// element-indexed [`InputMap`](crate::analyze::verify::InputMap) before
/// believing it.
pub fn rewrite_layout(kernel: &Kernel, rw: &LayoutRewrite) -> Result<Kernel, LayoutRewriteError> {
    check_spec(kernel, rw)?;
    let delta = rw.new_strides.len() as i32 - rw.old_buffers as i32;
    let mut r = Rewriter {
        rw,
        map_for: rw.maps.iter().map(|m| (m.param, m)).collect(),
        delta,
        next_reg: (kernel.n_regs as i32 + delta) as u16,
    };
    let body = r.block(&kernel.body)?;
    let k = Kernel {
        name: if rw.tag.is_empty() {
            kernel.name.clone()
        } else {
            format!("{}__{}", kernel.name, rw.tag)
        },
        n_params: (kernel.n_params as i32 + delta) as u16,
        n_regs: r.next_reg,
        n_preds: kernel.n_preds,
        smem_bytes: kernel.smem_bytes,
        body,
    };
    k.validate();
    Ok(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Pred;

    /// `out[i].x = buf[i*28 + 0] + buf[i*28 + 24]` with the canonical
    /// mad/ld idiom, params: buf, out, n.
    fn unopt_like() -> Kernel {
        let (buf, out, _n) = (Reg(0), Reg(1), Reg(2));
        let (i, a0, a1, x, m, o) = (Reg(3), Reg(4), Reg(5), Reg(6), Reg(7), Reg(8));
        let sum = Reg(9);
        Kernel {
            name: "unopt_like".into(),
            n_params: 3,
            n_regs: 10,
            n_preds: 0,
            smem_bytes: 0,
            body: vec![
                Stmt::I(Instr::Special {
                    dst: i,
                    sr: crate::ir::SpecialReg::TidX,
                }),
                Stmt::I(Instr::Mad {
                    float: false,
                    dst: a0,
                    a: Operand::R(i),
                    b: Operand::ImmU(28),
                    c: Operand::R(buf),
                }),
                Stmt::I(Instr::Ld {
                    dsts: vec![x],
                    space: MemSpace::Global,
                    base: a0,
                    offset: 0,
                }),
                Stmt::I(Instr::Mad {
                    float: false,
                    dst: a1,
                    a: Operand::R(i),
                    b: Operand::ImmU(28),
                    c: Operand::R(buf),
                }),
                Stmt::I(Instr::Ld {
                    dsts: vec![m],
                    space: MemSpace::Global,
                    base: a1,
                    offset: 24,
                }),
                Stmt::I(Instr::Alu {
                    op: crate::ir::AluOp::FAdd,
                    dst: sum,
                    a: Operand::R(x),
                    b: Operand::R(m),
                }),
                Stmt::I(Instr::Mad {
                    float: false,
                    dst: o,
                    a: Operand::R(i),
                    b: Operand::ImmU(4),
                    c: Operand::R(out),
                }),
                Stmt::I(Instr::St {
                    srcs: vec![Operand::R(sum)],
                    space: MemSpace::Global,
                    base: o,
                    offset: 0,
                }),
            ],
        }
    }

    fn pack2() -> LayoutRewrite {
        LayoutRewrite {
            tag: "pack2".into(),
            old_buffers: 1,
            new_strides: vec![8],
            maps: vec![BufferMap {
                param: 0,
                stride: 28,
                words: vec![
                    (
                        0,
                        FieldDest {
                            buffer: 0,
                            offset: 0,
                        },
                    ),
                    (
                        24,
                        FieldDest {
                            buffer: 0,
                            offset: 4,
                        },
                    ),
                ],
            }],
        }
    }

    #[test]
    fn merges_scalar_loads_into_vector_load() {
        let k = rewrite_layout(&unopt_like(), &pack2()).unwrap();
        assert_eq!(k.n_params, 3);
        assert_eq!(k.name, "unopt_like__pack2");
        // One base mad + one 2-word load replace two mads + two loads.
        let mut lds = Vec::new();
        k.visit_stmts(&mut |s| {
            if let Stmt::I(Instr::Ld { dsts, offset, .. }) = s {
                lds.push((dsts.len(), *offset));
            }
        });
        assert_eq!(lds, vec![(2, 0)]);
        let mut mads = 0;
        k.visit_stmts(&mut |s| {
            if let Stmt::I(Instr::Mad {
                float: false,
                b: Operand::ImmU(8),
                ..
            }) = s
            {
                mads += 1;
            }
        });
        assert_eq!(mads, 1);
    }

    #[test]
    fn unmapped_word_is_refused() {
        let mut rw = pack2();
        rw.maps[0].words.pop();
        assert_eq!(
            rewrite_layout(&unopt_like(), &rw),
            Err(LayoutRewriteError::UnmappedWord {
                param: 0,
                offset: 24
            })
        );
    }

    #[test]
    fn address_escape_is_refused() {
        let mut k = unopt_like();
        // Leak the matched address into arithmetic.
        k.body.insert(
            3,
            Stmt::I(Instr::Alu {
                op: crate::ir::AluOp::IAdd,
                dst: Reg(9),
                a: Operand::R(Reg(4)),
                b: Operand::ImmU(1),
            }),
        );
        assert_eq!(
            rewrite_layout(&k, &pack2()),
            Err(LayoutRewriteError::AddressEscapes { reg: 4 })
        );
    }

    #[test]
    fn residual_param_use_is_refused() {
        let mut k = unopt_like();
        k.body.push(Stmt::I(Instr::Mov {
            dst: Reg(9),
            src: Operand::R(Reg(0)),
        }));
        assert_eq!(
            rewrite_layout(&k, &pack2()),
            Err(LayoutRewriteError::ResidualParamUse { param: 0 })
        );
    }

    #[test]
    fn identity_detection() {
        assert!(!pack2().is_identity());
        let id = LayoutRewrite {
            tag: String::new(),
            old_buffers: 1,
            new_strides: vec![28],
            maps: vec![BufferMap {
                param: 0,
                stride: 28,
                words: vec![
                    (
                        0,
                        FieldDest {
                            buffer: 0,
                            offset: 0,
                        },
                    ),
                    (
                        24,
                        FieldDest {
                            buffer: 0,
                            offset: 24,
                        },
                    ),
                ],
            }],
        };
        assert!(id.is_identity());
    }

    #[test]
    fn segment_boundary_flushes_groups() {
        // Loads split across an If must not merge through it.
        let mut k = unopt_like();
        // Move the mass load inside an If.
        let ld_mass = k.body.remove(4);
        let mad_mass = k.body.remove(3);
        k.n_preds = 1;
        k.body.insert(
            3,
            Stmt::If {
                pred: Pred(0),
                negate: false,
                then: vec![mad_mass, ld_mass],
                els: vec![],
            },
        );
        let out = rewrite_layout(&k, &pack2()).unwrap();
        let mut widths = Vec::new();
        out.visit_stmts(&mut |s| {
            if let Stmt::I(Instr::Ld { dsts, .. }) = s {
                widths.push(dsts.len());
            }
        });
        assert_eq!(widths, vec![1, 1]);
    }
}
