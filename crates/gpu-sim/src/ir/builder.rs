//! Ergonomic construction of [`Kernel`] values.
//!
//! The builder keeps a stack of statement lists so structured constructs
//! (`for_loop`, `if_then`) nest naturally with closures:
//!
//! ```
//! use gpu_sim::ir::{KernelBuilder, MemSpace, Operand};
//!
//! let mut b = KernelBuilder::new("saxpy");
//! let x_base = b.param();          // Reg bound to param 0 at launch
//! let y_base = b.param();
//! let a = b.param();               // f32 scale factor as raw bits
//! let i = b.global_thread_index();
//! let xa = b.mad_u(i.into(), Operand::ImmU(4), x_base.into());
//! let ya = b.mad_u(i.into(), Operand::ImmU(4), y_base.into());
//! let x = b.ld(MemSpace::Global, xa, 0, 1)[0];
//! let y = b.ld(MemSpace::Global, ya, 0, 1)[0];
//! let r = b.fmad(x.into(), a.into(), y.into());
//! b.st(MemSpace::Global, ya, 0, vec![r.into()]);
//! let k = b.finish();
//! assert_eq!(k.n_params, 3);
//! ```

use super::*;

/// Builder for [`Kernel`] values. See the module docs for an example.
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    n_params: u16,
    next_reg: u16,
    next_pred: u16,
    smem_bytes: u32,
    params_closed: bool,
    stack: Vec<Vec<Stmt>>,
}

impl KernelBuilder {
    /// Start a kernel.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            n_params: 0,
            next_reg: 0,
            next_pred: 0,
            smem_bytes: 0,
            params_closed: false,
            stack: vec![Vec::new()],
        }
    }

    /// Declare static shared memory for the block.
    pub fn shared_mem(&mut self, bytes: u32) -> &mut Self {
        self.smem_bytes = bytes;
        self
    }

    /// Declare the next kernel parameter; must precede any instruction.
    /// Returns the register the parameter is bound to at launch.
    pub fn param(&mut self) -> Reg {
        assert!(
            !self.params_closed,
            "declare all parameters before emitting instructions"
        );
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        self.n_params += 1;
        r
    }

    /// Allocate a fresh virtual register.
    pub fn reg(&mut self) -> Reg {
        self.params_closed = true;
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Allocate a fresh predicate register.
    pub fn pred(&mut self) -> Pred {
        let p = Pred(self.next_pred);
        self.next_pred += 1;
        p
    }

    /// Emit a raw instruction.
    pub fn emit(&mut self, i: Instr) {
        self.params_closed = true;
        self.stack
            .last_mut()
            .expect("builder stack")
            .push(Stmt::I(i));
    }

    // ---- Convenience emitters (each returns the destination register) ----

    /// `dst = src`
    pub fn mov(&mut self, src: Operand) -> Reg {
        let dst = self.reg();
        self.emit(Instr::Mov { dst, src });
        dst
    }

    /// Read a special register.
    pub fn special(&mut self, sr: SpecialReg) -> Reg {
        let dst = self.reg();
        self.emit(Instr::Special { dst, sr });
        dst
    }

    /// Two-operand ALU op.
    pub fn alu(&mut self, op: AluOp, a: Operand, b: Operand) -> Reg {
        let dst = self.reg();
        self.emit(Instr::Alu { op, dst, a, b });
        dst
    }

    /// Two-operand ALU op writing an existing register (for accumulators).
    pub fn alu_into(&mut self, dst: Reg, op: AluOp, a: Operand, b: Operand) {
        self.emit(Instr::Alu { op, dst, a, b });
    }

    /// `fadd`
    pub fn fadd(&mut self, a: Operand, b: Operand) -> Reg {
        self.alu(AluOp::FAdd, a, b)
    }

    /// `fsub`
    pub fn fsub(&mut self, a: Operand, b: Operand) -> Reg {
        self.alu(AluOp::FSub, a, b)
    }

    /// `fmul`
    pub fn fmul(&mut self, a: Operand, b: Operand) -> Reg {
        self.alu(AluOp::FMul, a, b)
    }

    /// f32 `mad`: `a*b + c`.
    pub fn fmad(&mut self, a: Operand, b: Operand, c: Operand) -> Reg {
        let dst = self.reg();
        self.emit(Instr::Mad {
            float: true,
            dst,
            a,
            b,
            c,
        });
        dst
    }

    /// f32 `mad` into an existing accumulator register.
    pub fn fmad_into(&mut self, dst: Reg, a: Operand, b: Operand, c: Operand) {
        self.emit(Instr::Mad {
            float: true,
            dst,
            a,
            b,
            c,
        });
    }

    /// u32 `mad.lo`: `a*b + c` — the address-computation workhorse.
    pub fn mad_u(&mut self, a: Operand, b: Operand, c: Operand) -> Reg {
        let dst = self.reg();
        self.emit(Instr::Mad {
            float: false,
            dst,
            a,
            b,
            c,
        });
        dst
    }

    /// u32 add.
    pub fn iadd(&mut self, a: Operand, b: Operand) -> Reg {
        self.alu(AluOp::IAdd, a, b)
    }

    /// u32 multiply.
    pub fn imul(&mut self, a: Operand, b: Operand) -> Reg {
        self.alu(AluOp::IMul, a, b)
    }

    /// `rsqrt.f32`
    pub fn frsqrt(&mut self, a: Operand) -> Reg {
        let dst = self.reg();
        self.emit(Instr::Unary {
            op: UnaryOp::FRsqrt,
            dst,
            a,
        });
        dst
    }

    /// Set a predicate.
    pub fn setp(&mut self, cmp: CmpOp, a: Operand, b: Operand) -> Pred {
        let dst = self.pred();
        self.emit(Instr::Setp { dst, cmp, a, b });
        dst
    }

    /// Vector load of `width` ∈ {1,2,4} words; returns the destination regs.
    pub fn ld(&mut self, space: MemSpace, base: Reg, offset: u32, width: usize) -> Vec<Reg> {
        assert!(
            matches!(width, 1 | 2 | 4),
            "load width must be 1, 2 or 4 words"
        );
        let dsts: Vec<Reg> = (0..width).map(|_| self.reg()).collect();
        self.emit(Instr::Ld {
            dsts: dsts.clone(),
            space,
            base,
            offset,
        });
        dsts
    }

    /// Vector load into pre-allocated destination registers (for
    /// double-buffering patterns where the destination must persist across
    /// loop iterations).
    pub fn ld_into(&mut self, space: MemSpace, base: Reg, offset: u32, dsts: Vec<Reg>) {
        assert!(
            matches!(dsts.len(), 1 | 2 | 4),
            "load width must be 1, 2 or 4 words"
        );
        self.emit(Instr::Ld {
            dsts,
            space,
            base,
            offset,
        });
    }

    /// Vector store.
    pub fn st(&mut self, space: MemSpace, base: Reg, offset: u32, srcs: Vec<Operand>) {
        assert!(
            matches!(srcs.len(), 1 | 2 | 4),
            "store width must be 1, 2 or 4 words"
        );
        self.emit(Instr::St {
            srcs,
            space,
            base,
            offset,
        });
    }

    /// `clock()`
    pub fn clock(&mut self) -> Reg {
        let dst = self.reg();
        self.emit(Instr::Clock { dst });
        dst
    }

    /// `blockIdx.x * blockDim.x + threadIdx.x` — the canonical 1-D index.
    pub fn global_thread_index(&mut self) -> Reg {
        let tid = self.special(SpecialReg::TidX);
        let ctaid = self.special(SpecialReg::CtaidX);
        let ntid = self.special(SpecialReg::NtidX);
        self.mad_u(ctaid.into(), ntid.into(), tid.into())
    }

    // ---- Structured constructs ----

    /// Counted loop; the closure receives the builder and the induction
    /// register.
    pub fn for_loop(
        &mut self,
        start: Operand,
        end: Operand,
        step: u32,
        f: impl FnOnce(&mut Self, Reg),
    ) {
        assert!(step > 0, "loop step must be positive");
        let var = self.reg();
        self.stack.push(Vec::new());
        f(self, var);
        let body = self.stack.pop().expect("builder stack");
        self.stack
            .last_mut()
            .expect("builder stack")
            .push(Stmt::For {
                var,
                start,
                end,
                step,
                body,
            });
    }

    /// Divergent bottom-tested loop (`do { body } while (pred)`), for
    /// data-dependent iteration like tree traversals. The closure builds the
    /// body and must return the continuation predicate it computed.
    pub fn do_while(&mut self, f: impl FnOnce(&mut Self) -> Pred) {
        self.stack.push(Vec::new());
        let pred = f(self);
        let body = self.stack.pop().expect("builder stack");
        self.stack
            .last_mut()
            .expect("builder stack")
            .push(Stmt::While {
                pred,
                negate: false,
                body,
            });
    }

    /// Masked two-sided conditional.
    pub fn if_else(
        &mut self,
        pred: Pred,
        then: impl FnOnce(&mut Self),
        els: impl FnOnce(&mut Self),
    ) {
        self.stack.push(Vec::new());
        then(self);
        let t = self.stack.pop().expect("builder stack");
        self.stack.push(Vec::new());
        els(self);
        let e = self.stack.pop().expect("builder stack");
        self.stack
            .last_mut()
            .expect("builder stack")
            .push(Stmt::If {
                pred,
                negate: false,
                then: t,
                els: e,
            });
    }

    /// Masked one-sided conditional.
    pub fn if_then(&mut self, pred: Pred, then: impl FnOnce(&mut Self)) {
        self.if_else(pred, then, |_| {});
    }

    /// Block barrier.
    pub fn sync(&mut self) {
        self.stack
            .last_mut()
            .expect("builder stack")
            .push(Stmt::Sync);
    }

    /// Finish and validate the kernel.
    pub fn finish(mut self) -> Kernel {
        assert_eq!(self.stack.len(), 1, "unbalanced structured constructs");
        let k = Kernel {
            name: self.name,
            n_params: self.n_params,
            n_regs: self.next_reg,
            n_preds: self.next_pred,
            smem_bytes: self.smem_bytes,
            body: self.stack.pop().expect("builder stack"),
        };
        k.validate();
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_structure() {
        let mut b = KernelBuilder::new("nested");
        let n = b.param();
        b.for_loop(Operand::ImmU(0), n.into(), 1, |b, i| {
            let p = b.setp(CmpOp::ULt, i.into(), Operand::ImmU(2));
            b.if_then(p, |b| {
                b.mov(Operand::ImmU(7));
            });
            b.sync();
        });
        let k = b.finish();
        assert_eq!(k.n_params, 1);
        assert_eq!(k.n_preds, 1);
        match &k.body[0] {
            Stmt::For { body, .. } => {
                assert!(matches!(body[0], Stmt::I(Instr::Setp { .. })));
                assert!(matches!(body[1], Stmt::If { .. }));
                assert!(matches!(body[2], Stmt::Sync));
            }
            other => panic!("expected For, got {other:?}"),
        }
    }

    #[test]
    #[should_panic]
    fn params_after_instructions_rejected() {
        let mut b = KernelBuilder::new("bad");
        b.mov(Operand::ImmU(0));
        b.param();
    }

    #[test]
    fn global_thread_index_uses_three_specials() {
        let mut b = KernelBuilder::new("gti");
        let _ = b.global_thread_index();
        let k = b.finish();
        let mut specials = 0;
        k.visit_stmts(&mut |s| {
            if matches!(s, Stmt::I(Instr::Special { .. })) {
                specials += 1;
            }
        });
        assert_eq!(specials, 3);
    }

    #[test]
    #[should_panic]
    fn bad_load_width_rejected() {
        let mut b = KernelBuilder::new("w");
        let base = b.mov(Operand::ImmU(0));
        b.ld(MemSpace::Global, base, 0, 3);
    }
}
