//! A PTX-flavoured textual form of kernels — the "disassembly" view.
//!
//! Used for debugging passes and for documentation: the paper's discussion of
//! what unrolling removes ("one compare, an add, a jump plus an additional
//! add") is easiest to *see* on the printed kernel before and after the
//! passes. The format is stable enough to test against but is not a parsed
//! language.
//!
//! Every retiring instruction is prefixed with its stable index in
//! `[  n]` brackets — the same [`InstrIndexer`] numbering the device-fault
//! sanitizer reports in `instruction:` coordinates and the static analyzer
//! ([`crate::analyze`]) uses in diagnostics, so a fault or lint at
//! instruction *n* can be looked up directly in the disassembly. Loop
//! latches (the lowered `add`/`setp`/`bra` triple) are annotated on the
//! loop's closing brace.

use super::*;
use std::fmt::Write as _;

fn op(o: &Operand) -> String {
    match o {
        Operand::R(r) => format!("%r{}", r.0),
        Operand::ImmF(f) => format!("{f:?}"),
        Operand::ImmU(u) => format!("{u}"),
    }
}

fn reg(r: &Reg) -> String {
    format!("%r{}", r.0)
}

fn instr(i: &Instr) -> String {
    match i {
        Instr::Mov { dst, src } => format!("mov      {}, {}", reg(dst), op(src)),
        Instr::Special { dst, sr } => {
            let name = match sr {
                SpecialReg::TidX => "%tid.x",
                SpecialReg::CtaidX => "%ctaid.x",
                SpecialReg::NtidX => "%ntid.x",
                SpecialReg::NctaidX => "%nctaid.x",
            };
            format!("mov      {}, {name}", reg(dst))
        }
        Instr::Alu { op: o, dst, a, b } => {
            let name = match o {
                AluOp::FAdd => "add.f32 ",
                AluOp::FSub => "sub.f32 ",
                AluOp::FMul => "mul.f32 ",
                AluOp::FMin => "min.f32 ",
                AluOp::FMax => "max.f32 ",
                AluOp::IAdd => "add.u32 ",
                AluOp::ISub => "sub.u32 ",
                AluOp::IMul => "mul.u32 ",
                AluOp::IShl => "shl.u32 ",
                AluOp::IAnd => "and.u32 ",
                AluOp::IMin => "min.u32 ",
            };
            format!("{name} {}, {}, {}", reg(dst), op(a), op(b))
        }
        Instr::Mad {
            float,
            dst,
            a,
            b,
            c,
        } => {
            let name = if *float { "mad.f32 " } else { "mad.u32 " };
            format!("{name} {}, {}, {}, {}", reg(dst), op(a), op(b), op(c))
        }
        Instr::Unary { op: o, dst, a } => {
            let name = match o {
                UnaryOp::FRsqrt => "rsqrt.f32",
                UnaryOp::FNeg => "neg.f32  ",
                UnaryOp::U2F => "cvt.f32.u32",
                UnaryOp::F2U => "cvt.u32.f32",
            };
            format!("{name} {}, {}", reg(dst), op(a))
        }
        Instr::Setp { dst, cmp, a, b } => {
            let name = match cmp {
                CmpOp::ULt => "lt.u32",
                CmpOp::UGe => "ge.u32",
                CmpOp::UEq => "eq.u32",
                CmpOp::UNe => "ne.u32",
                CmpOp::FLt => "lt.f32",
            };
            format!("setp.{name} %p{}, {}, {}", dst.0, op(a), op(b))
        }
        Instr::Ld {
            dsts,
            space,
            base,
            offset,
        } => {
            let sp = match space {
                MemSpace::Global => "global",
                MemSpace::Shared => "shared",
                MemSpace::Texture => "tex",
            };
            let v = match dsts.len() {
                1 => String::new(),
                n => format!(".v{n}"),
            };
            let ds: Vec<String> = dsts.iter().map(reg).collect();
            format!(
                "ld.{sp}{v}  {{{}}}, [{}+{}]",
                ds.join(","),
                reg(base),
                offset
            )
        }
        Instr::St {
            srcs,
            space,
            base,
            offset,
        } => {
            let sp = match space {
                MemSpace::Global => "global",
                MemSpace::Shared => "shared",
                MemSpace::Texture => "tex",
            };
            let v = match srcs.len() {
                1 => String::new(),
                n => format!(".v{n}"),
            };
            let ss: Vec<String> = srcs.iter().map(op).collect();
            format!(
                "st.{sp}{v}  [{}+{}], {{{}}}",
                reg(base),
                offset,
                ss.join(",")
            )
        }
        Instr::Clock { dst } => format!("mov      {}, %clock", reg(dst)),
    }
}

/// `[  n] ` index prefix; `NO_IDX` pads unnumbered lines to the same column.
fn idx(i: u64) -> String {
    format!("[{i:>3}] ")
}

const NO_IDX: &str = "      ";

fn walk(stmts: &[Stmt], depth: usize, ix: &mut InstrIndexer, out: &mut String) {
    let pad = "    ".repeat(depth + 1);
    for s in stmts {
        match s {
            Stmt::I(i) => {
                let _ = writeln!(out, "{pad}{}{}", idx(ix.instr()), instr(i));
            }
            Stmt::Sync => {
                let _ = writeln!(out, "{pad}{NO_IDX}bar.sync 0");
            }
            Stmt::For {
                var,
                start,
                end,
                step,
                body,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}{}for {} = {}; {} < {}; {} += {} {{",
                    idx(ix.instr()),
                    reg(var),
                    op(start),
                    reg(var),
                    op(end),
                    reg(var),
                    step
                );
                walk(body, depth + 1, ix, out);
                let (add, setp, bra) = ix.for_latch();
                let _ = writeln!(
                    out,
                    "{pad}{NO_IDX}}} // latch: add [{add}], setp [{setp}], bra [{bra}]"
                );
            }
            Stmt::While { pred, negate, body } => {
                let neg = if *negate { "!" } else { "" };
                let _ = writeln!(out, "{pad}{NO_IDX}do {{");
                walk(body, depth + 1, ix, out);
                let _ = writeln!(
                    out,
                    "{pad}{NO_IDX}}} while {neg}%p{} // bra [{}]",
                    pred.0,
                    ix.while_backedge()
                );
            }
            Stmt::If {
                pred,
                negate,
                then,
                els,
            } => {
                let neg = if *negate { "!" } else { "" };
                let _ = writeln!(out, "{pad}{NO_IDX}if {neg}%p{} {{", pred.0);
                walk(then, depth + 1, ix, out);
                if !els.is_empty() {
                    let _ = writeln!(out, "{pad}{NO_IDX}}} else {{");
                    walk(els, depth + 1, ix, out);
                }
                let _ = writeln!(out, "{pad}{NO_IDX}}}");
            }
        }
    }
}

/// Render a kernel as PTX-flavoured text with stable instruction indices.
pub fn disassemble(kernel: &Kernel) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        ".kernel {} (params: {}, regs: {}, smem: {} B) {{",
        kernel.name, kernel.n_params, kernel.n_regs, kernel.smem_bytes
    );
    let mut ix = InstrIndexer::new();
    walk(&kernel.body, 0, &mut ix, &mut out);
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::passes::unroll_innermost;
    use crate::ir::KernelBuilder;

    fn sample() -> Kernel {
        let mut b = KernelBuilder::new("disasm");
        let base = b.param();
        let acc = b.mov(Operand::ImmF(0.0));
        b.for_loop(Operand::ImmU(0), Operand::ImmU(4), 1, |b, j| {
            let addr = b.mad_u(j.into(), Operand::ImmU(4), base.into());
            let v = b.ld(MemSpace::Shared, addr, 0, 1)[0];
            b.alu_into(acc, AluOp::FAdd, acc.into(), v.into());
        });
        b.st(MemSpace::Global, base, 0, vec![acc.into()]);
        b.finish()
    }

    #[test]
    fn disassembly_contains_every_construct() {
        let text = disassemble(&sample());
        assert!(text.contains(".kernel disasm"));
        assert!(text.contains("for %r"));
        assert!(text.contains("mad.u32"));
        assert!(text.contains("ld.shared"));
        assert!(text.contains("st.global"));
        assert!(text.contains("add.f32"));
    }

    #[test]
    fn unrolling_is_visible_in_the_text() {
        let k = sample();
        let before = disassemble(&k);
        let after = disassemble(&unroll_innermost(&k, 4));
        assert!(before.contains("for "));
        assert!(
            !after.contains("for "),
            "fully unrolled kernel has no loop:\n{after}"
        );
        // The hard-coded offsets the paper describes.
        for off in [0, 4, 8, 12] {
            assert!(
                after.contains(&format!("+{off}]")),
                "missing offset {off}:\n{after}"
            );
        }
        // And the address mads are gone.
        assert!(
            !after.contains("mad.u32"),
            "address computation should fold away"
        );
    }

    /// The printed indices are the sanitizer/analyzer coordinates: the first
    /// dynamic execution of each statement retires at the printed number.
    #[test]
    fn printed_indices_match_retired_numbering() {
        let text = disassemble(&sample());
        // param is %r0; acc mov is the first retiring instruction.
        assert!(text.contains("[  0] mov"), "{text}");
        // For init mov takes index 1, the two body instructions 2..3, the
        // ld 4 (mad, ld, add) and the latch add/setp/bra retire 5, 6, 7
        // after the body.
        assert!(text.contains("[  1] for %r"), "{text}");
        assert!(text.contains("latch: add [5], setp [6], bra [7]"), "{text}");
        // The store after the loop continues the numbering.
        assert!(text.contains("[  8] st.global"), "{text}");
    }

    #[test]
    fn nested_structure_indents() {
        let mut b = KernelBuilder::new("nest");
        let x = b.mov(Operand::ImmU(1));
        let p = b.setp(CmpOp::ULt, x.into(), Operand::ImmU(2));
        b.if_else(
            p,
            |b| {
                b.mov(Operand::ImmF(1.0));
            },
            |b| {
                b.mov(Operand::ImmF(2.0));
            },
        );
        b.sync();
        let text = disassemble(&b.finish());
        assert!(text.contains("if %p0 {"));
        assert!(text.contains("} else {"));
        assert!(text.contains("bar.sync"));
        assert!(text.contains("setp.lt.u32"));
    }
}
