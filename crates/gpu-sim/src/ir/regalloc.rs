//! Register-demand analysis.
//!
//! Occupancy on CC-1.x devices is usually register-bound, so the paper's
//! optimization story hinges on *registers per thread*: full unrolling frees
//! the inner induction variable (18 → 17) and invariant code motion frees one
//! more (→ 16). We compute register demand the way an allocator would bound
//! it: the maximum number of simultaneously-live **values** (MAXLIVE) over
//! the structured program, plus a small fixed ABI reserve.
//!
//! Liveness is per *value*, not per register name: each definition opens a
//! new live segment that ends at the value's last use before the next
//! redefinition. (This matters after unrolling, where 128 loop copies reuse
//! the same temporary names back to back — an interval-per-name analysis
//! would wrongly see them live across the whole block.) Loop-carried values
//! — those whose first touch inside a loop body is a *use* (accumulators,
//! induction variables, setup values consumed per iteration) — are live
//! across the entire loop, back edge included.
//!
//! Parameter registers are excluded: on CC-1.x, kernel parameters live in
//! shared/param space and are re-read at each use (`ld.param` folds into the
//! consumer), costing no registers. A kernel that wants a parameter in a
//! register across a loop copies it with a `Mov`, and the copy is counted.

use super::*;
use std::collections::HashMap;

/// Extra registers reserved per thread beyond live user values. Calibrated
/// to 0: the per-value MAXLIVE approximation above already lands on the
/// paper's reported 18-register baseline for the force kernel, so any ABI
/// reserve the real toolchain kept is absorbed by the approximation.
pub const ABI_RESERVED_REGS: u16 = 0;

/// Result of the register-demand analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegDemand {
    /// Maximum simultaneously-live 32-bit values.
    pub max_live: u16,
    /// Reported registers per thread (`max_live + ABI_RESERVED_REGS`) — what
    /// `nvcc --ptxas-options=-v` would print, fed to the occupancy
    /// calculator.
    pub regs_per_thread: u16,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Touch {
    pos: u32,
    is_def: bool,
}

#[derive(Default)]
struct Walker {
    pos: u32,
    touches: HashMap<Reg, Vec<Touch>>,
    /// Loop body spans (first body position, last overhead position),
    /// collected in post-order (innermost first).
    loops: Vec<(u32, u32)>,
}

impl Walker {
    fn touch(&mut self, r: Reg, is_def: bool) {
        self.touches.entry(r).or_default().push(Touch {
            pos: self.pos,
            is_def,
        });
    }

    fn touch_operand(&mut self, o: &Operand) {
        if let Operand::R(r) = o {
            self.touch(*r, false);
        }
    }

    fn walk(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            match s {
                Stmt::I(i) => {
                    self.pos += 1;
                    // Reads happen before the write.
                    for r in i.uses() {
                        self.touch(r, false);
                    }
                    for r in i.defs() {
                        self.touch(r, true);
                    }
                }
                Stmt::Sync => {
                    self.pos += 1;
                }
                Stmt::For {
                    var,
                    start,
                    end,
                    step: _,
                    body,
                } => {
                    // Loop init: mov var, start.
                    self.pos += 1;
                    self.touch_operand(start);
                    self.touch(*var, true);
                    let loop_start = self.pos + 1;
                    self.walk(body);
                    // Overhead: add var; setp var, end; bra.
                    self.pos += 1;
                    self.touch(*var, false);
                    self.touch(*var, true);
                    self.pos += 1;
                    self.touch(*var, false);
                    self.touch_operand(end);
                    self.pos += 1; // bra
                    self.loops.push((loop_start, self.pos));
                }
                Stmt::If { then, els, .. } => {
                    self.pos += 1;
                    self.walk(then);
                    self.walk(els);
                }
                Stmt::While { body, .. } => {
                    self.pos += 1; // entry marker
                    let loop_start = self.pos + 1;
                    self.walk(body);
                    self.pos += 1; // backedge branch
                    self.loops.push((loop_start, self.pos));
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Segment {
    start: u32,
    end: u32,
}

/// Compute register demand for a kernel.
pub fn register_demand(kernel: &Kernel) -> RegDemand {
    let mut w = Walker::default();
    w.walk(&kernel.body);
    for p in 0..kernel.n_params {
        w.touches.remove(&Reg(p));
    }

    // Build per-value segments from the touch streams.
    let mut segments: HashMap<Reg, Vec<Segment>> = HashMap::new();
    for (r, ts) in &w.touches {
        let mut segs: Vec<Segment> = Vec::new();
        for t in ts {
            if t.is_def {
                match segs.last_mut() {
                    // Read-modify-write (`acc = acc + x`, or a load whose
                    // base register is its destination): the old value dies
                    // exactly where the new one is born — an allocator reuses
                    // the register, so this is one live value, not two.
                    Some(s) if s.end == t.pos => {}
                    _ => segs.push(Segment {
                        start: t.pos,
                        end: t.pos,
                    }),
                }
            } else {
                match segs.last_mut() {
                    Some(s) => s.end = s.end.max(t.pos),
                    // Upward-exposed use with no prior def (shouldn't happen
                    // for well-formed kernels once params are excluded).
                    None => segs.push(Segment {
                        start: 0,
                        end: t.pos,
                    }),
                }
            }
        }
        segments.insert(*r, segs);
    }

    // Loop-carried extension, innermost loops first: a register whose first
    // touch inside the loop body is a use carries its value across the back
    // edge — merge the feeding segment and everything inside the loop into
    // one segment covering the whole loop.
    for &(ls, le) in &w.loops {
        for (r, segs) in segments.iter_mut() {
            let Some(first_inside) = w.touches[r].iter().find(|t| t.pos >= ls && t.pos <= le)
            else {
                continue;
            };
            if first_inside.is_def {
                continue; // freshly defined each iteration; no back-edge value
            }
            // Merge: the last segment starting before the loop (the feeder)
            // plus all segments intersecting the loop body.
            let mut new_start = ls;
            let mut new_end = le;
            let mut keep: Vec<Segment> = Vec::new();
            let mut before: Vec<Segment> = Vec::new();
            let mut inside: Vec<Segment> = Vec::new();
            let mut after: Vec<Segment> = Vec::new();
            for s in segs.iter() {
                if s.start < ls && s.end < ls {
                    before.push(*s);
                } else if s.start > le {
                    after.push(*s);
                } else {
                    inside.push(*s);
                }
            }
            // The value live on entry comes from the last segment before the
            // loop (spanning ones are already in `inside`).
            if inside.iter().all(|s| s.start >= ls) {
                if let Some(feeder) = before.last().copied() {
                    before.pop();
                    inside.push(feeder);
                }
            }
            for s in &inside {
                new_start = new_start.min(s.start);
                new_end = new_end.max(s.end);
            }
            keep.extend(before);
            keep.push(Segment {
                start: new_start,
                end: new_end,
            });
            keep.extend(after);
            keep.sort_by_key(|s| s.start);
            *segs = keep;
        }
    }

    // MAXLIVE sweep.
    let mut events: Vec<(u32, i32)> = Vec::new();
    for segs in segments.values() {
        for s in segs {
            events.push((s.start, 1));
            events.push((s.end + 1, -1));
        }
    }
    events.sort_unstable();
    let (mut live, mut max_live) = (0i32, 0i32);
    for (_, d) in events {
        live += d;
        max_live = max_live.max(live);
    }
    let max_live = max_live as u16;
    RegDemand {
        max_live,
        regs_per_thread: max_live + ABI_RESERVED_REGS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::passes::unroll_innermost;
    use crate::ir::KernelBuilder;

    fn demand(k: &Kernel) -> u16 {
        register_demand(k).max_live
    }

    #[test]
    fn disjoint_values_share_a_slot() {
        let mut b = KernelBuilder::new("disjoint");
        let a = b.mov(Operand::ImmF(1.0));
        let _a2 = b.fadd(a.into(), Operand::ImmF(1.0));
        let c = b.mov(Operand::ImmF(2.0));
        let _c2 = b.fadd(c.into(), Operand::ImmF(1.0));
        assert_eq!(demand(&b.finish()), 2);
    }

    #[test]
    fn simultaneously_live_values_stack_up() {
        let mut b = KernelBuilder::new("stack");
        let r1 = b.mov(Operand::ImmF(1.0));
        let r2 = b.mov(Operand::ImmF(2.0));
        let r3 = b.mov(Operand::ImmF(3.0));
        let s = b.fadd(r1.into(), r2.into());
        let _t = b.fadd(s.into(), r3.into());
        assert_eq!(demand(&b.finish()), 4);
    }

    #[test]
    fn reused_temp_names_do_not_stack() {
        // The unrolled-copy pattern: the same register redefined and consumed
        // back to back must count once, not once per copy.
        let mut b = KernelBuilder::new("reuse");
        let acc = b.mov(Operand::ImmF(0.0));
        let t = b.mov(Operand::ImmF(1.0));
        for _ in 0..8 {
            b.emit(Instr::Mov {
                dst: t,
                src: Operand::ImmF(2.0),
            });
            b.alu_into(acc, AluOp::FAdd, acc.into(), t.into());
        }
        let _out = b.fadd(acc.into(), Operand::ImmF(0.0));
        assert_eq!(demand(&b.finish()), 2, "acc and t only — copies reuse t");
    }

    #[test]
    fn value_used_inside_loop_lives_across_it() {
        let mut b = KernelBuilder::new("looplive");
        let x = b.mov(Operand::ImmF(1.0));
        let acc = b.mov(Operand::ImmF(0.0));
        b.for_loop(Operand::ImmU(0), Operand::ImmU(10), 1, |b, _i| {
            let t = b.fmul(x.into(), Operand::ImmF(2.0));
            b.alu_into(acc, AluOp::FAdd, acc.into(), t.into());
        });
        let _out = b.fadd(acc.into(), Operand::ImmF(0.0));
        // Live through the loop: x, acc, induction var; t briefly → 4.
        assert_eq!(demand(&b.finish()), 4);
    }

    #[test]
    fn accumulator_is_live_across_the_back_edge() {
        let mut b = KernelBuilder::new("acc");
        let acc = b.mov(Operand::ImmF(0.0));
        b.for_loop(Operand::ImmU(0), Operand::ImmU(4), 1, |b, _| {
            // acc is used then redefined each iteration: loop-carried.
            b.alu_into(acc, AluOp::FAdd, acc.into(), Operand::ImmF(1.0));
            // A fresh temp per iteration is NOT loop-carried.
            let t = b.fmul(acc.into(), Operand::ImmF(2.0));
            let _ = t;
        });
        let _out = b.fadd(acc.into(), Operand::ImmF(0.0));
        // acc + var live through loop; t transient → peak 3.
        assert_eq!(demand(&b.finish()), 3);
    }

    #[test]
    fn induction_variable_costs_a_register() {
        let mk = |with_loop: bool| {
            let mut b = KernelBuilder::new("iv");
            let acc = b.mov(Operand::ImmF(0.0));
            if with_loop {
                b.for_loop(Operand::ImmU(0), Operand::ImmU(4), 1, |b, _i| {
                    b.alu_into(acc, AluOp::FAdd, acc.into(), Operand::ImmF(1.0));
                });
            } else {
                for _ in 0..4 {
                    b.alu_into(acc, AluOp::FAdd, acc.into(), Operand::ImmF(1.0));
                }
            }
            b.finish()
        };
        assert_eq!(demand(&mk(true)) - demand(&mk(false)), 1);
    }

    #[test]
    fn unrolling_a_real_loop_reduces_demand() {
        let mut b = KernelBuilder::new("u");
        let base = b.param();
        let acc = b.mov(Operand::ImmF(0.0));
        b.for_loop(Operand::ImmU(0), Operand::ImmU(8), 1, |b, j| {
            let addr = b.mad_u(j.into(), Operand::ImmU(4), base.into());
            let v = b.ld(MemSpace::Shared, addr, 0, 1)[0];
            b.alu_into(acc, AluOp::FAdd, acc.into(), v.into());
        });
        let _out = b.fadd(acc.into(), Operand::ImmF(0.0));
        let k = b.finish();
        let u = unroll_innermost(&k, 8);
        // Unrolling frees the induction register AND folds the per-iteration
        // address temporary into hard-coded load offsets.
        assert_eq!(
            demand(&k) - demand(&u),
            2,
            "induction register + address temp"
        );
    }

    #[test]
    fn hoisting_an_invariant_reduces_pressure() {
        let mk = |hoisted: bool| {
            let mut b = KernelBuilder::new("icm");
            let ep = b.param();
            let eps = b.mov(ep.into());
            let acc = b.mov(Operand::ImmF(0.0));
            let pre = if hoisted {
                Some(b.fmul(eps.into(), eps.into()))
            } else {
                None
            };
            b.for_loop(Operand::ImmU(0), Operand::ImmU(8), 1, |b, _| {
                let e2 = pre.unwrap_or_else(|| b.fmul(eps.into(), eps.into()));
                b.alu_into(acc, AluOp::FAdd, acc.into(), e2.into());
            });
            let _o = b.fadd(acc.into(), Operand::ImmF(0.0));
            b.finish()
        };
        assert_eq!(demand(&mk(false)) - demand(&mk(true)), 1);
    }

    #[test]
    fn params_live_in_param_space_and_cost_nothing() {
        let mut b = KernelBuilder::new("params");
        let _unused = b.param();
        let used = b.param();
        let _x = b.iadd(used.into(), Operand::ImmU(1));
        assert_eq!(demand(&b.finish()), 1);
    }

    #[test]
    fn param_copied_to_register_is_counted() {
        let mut b = KernelBuilder::new("copy");
        let p = b.param();
        let local = b.mov(p.into());
        let acc = b.mov(Operand::ImmF(0.0));
        b.for_loop(Operand::ImmU(0), Operand::ImmU(4), 1, |b, _| {
            b.alu_into(acc, AluOp::FAdd, acc.into(), local.into());
        });
        let _out = b.fadd(acc.into(), Operand::ImmF(0.0));
        assert_eq!(demand(&b.finish()), 3);
    }

    #[test]
    fn reported_regs_add_the_abi_reserve() {
        let mut b = KernelBuilder::new("abi");
        let _x = b.mov(Operand::ImmU(0));
        let d = register_demand(&b.finish());
        assert_eq!(d.regs_per_thread, d.max_live + ABI_RESERVED_REGS);
    }
}
