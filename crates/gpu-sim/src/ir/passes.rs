//! The paper's hand optimizations as IR-to-IR passes.
//!
//! * [`unroll_innermost`] — partial/full unrolling of the innermost loop
//!   (Sec. IV-A: "we unroll the loop starting from unrolling it 4 times to
//!   fully K or here 128 times").
//! * [`licm`] — loop-invariant code motion (the paper's "manually applying
//!   invariant code motion ... reduced the register pressure ... by one
//!   register").
//! * [`fold_addressing`] — local constant/address folding, which is what
//!   turns an unrolled iteration's `mad`-computed address into a hard-coded
//!   load offset (the paper: "an additional add to calculate the address
//!   offset that now is hard coded"). Deliberately restricted to *integer
//!   address arithmetic*: the 2008 toolchain demonstrably did not CSE the
//!   floating-point invariants (otherwise the authors' manual ICM would have
//!   done nothing), so the model must not either.

use super::*;
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Unrolling
// ---------------------------------------------------------------------------

/// Substitute every *use* of `var` in `stmts` with `rep` (definitions are not
/// touched — unrolled copies must not redefine the induction register).
fn substitute_uses(stmts: &mut [Stmt], var: Reg, rep: Operand) {
    let sub = |o: &mut Operand| {
        if *o == Operand::R(var) {
            *o = rep;
        }
    };
    for s in stmts {
        match s {
            Stmt::I(i) => match i {
                Instr::Mov { src, .. } => sub(src),
                Instr::Special { .. } | Instr::Clock { .. } => {}
                Instr::Alu { a, b, .. } => {
                    sub(a);
                    sub(b);
                }
                Instr::Mad { a, b, c, .. } => {
                    sub(a);
                    sub(b);
                    sub(c);
                }
                Instr::Unary { a, .. } => sub(a),
                Instr::Setp { a, b, .. } => {
                    sub(a);
                    sub(b);
                }
                Instr::Ld { base, .. } => {
                    assert_ne!(
                        *base, var,
                        "cannot substitute an immediate into a load base; run fold first"
                    );
                }
                Instr::St { srcs, base, .. } => {
                    for o in srcs {
                        sub(o);
                    }
                    assert_ne!(
                        *base, var,
                        "cannot substitute an immediate into a store base"
                    );
                }
            },
            Stmt::For {
                start, end, body, ..
            } => {
                sub(start);
                sub(end);
                substitute_uses(body, var, rep);
            }
            Stmt::If { then, els, .. } => {
                substitute_uses(then, var, rep);
                substitute_uses(els, var, rep);
            }
            Stmt::While { body, .. } => substitute_uses(body, var, rep),
            Stmt::Sync => {}
        }
    }
}

fn defines(stmts: &[Stmt], r: Reg) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::I(i) => i.defs().contains(&r),
        Stmt::For { var, body, .. } => *var == r || defines(body, r),
        Stmt::While { body, .. } => defines(body, r),
        Stmt::If { then, els, .. } => defines(then, r) || defines(els, r),
        Stmt::Sync => false,
    })
}

/// Unroll the innermost loop of the kernel by `factor`.
///
/// Requirements (checked): the innermost loop's bounds are immediates, the
/// trip count is a multiple of `factor`, and the body does not redefine the
/// induction variable. `factor == trip count` removes the loop entirely
/// (full unroll, the paper's headline case); smaller factors keep the loop
/// with a widened step and per-copy induction offsets, which
/// [`fold_addressing`] then folds into load/store offsets.
pub fn unroll_innermost(kernel: &Kernel, factor: u32) -> Kernel {
    assert!(factor >= 1);
    let mut k = kernel.clone();
    let mut next_reg = k.n_regs;
    let done = unroll_in(&mut k.body, factor, &mut next_reg);
    assert!(
        done,
        "kernel has no innermost loop with immediate bounds to unroll"
    );
    k.n_regs = next_reg;
    let k2 = fold_addressing(&k);
    k2.validate();
    k2
}

// Unrolling a loop with non-immediate bounds is a caller contract violation
// (asserted, like the divisibility requirement), not a device fault. The
// recursion conditions cannot become match guards: they call `unroll_in`,
// which needs the bodies mutably.
#[allow(clippy::panic, clippy::collapsible_match)]
fn unroll_in(stmts: &mut Vec<Stmt>, factor: u32, next_reg: &mut u16) -> bool {
    // Find the deepest loop: recurse first.
    for s in stmts.iter_mut() {
        match s {
            Stmt::For { body, .. } => {
                if (body.iter().any(|b| matches!(b, Stmt::For { .. }))
                    || body
                        .iter()
                        .any(|b| matches!(b, Stmt::If { .. }) && contains_loop(b)))
                    && unroll_in(body, factor, next_reg)
                {
                    return true;
                }
            }
            Stmt::If { then, els, .. } => {
                if (then.iter().any(contains_loop) || els.iter().any(contains_loop))
                    && (unroll_in(then, factor, next_reg) || unroll_in(els, factor, next_reg))
                {
                    return true;
                }
            }
            _ => {}
        }
    }
    // No nested loop below any loop here: unroll the first loop at this level.
    for idx in 0..stmts.len() {
        if let Stmt::For { .. } = &stmts[idx] {
            let Stmt::For {
                var,
                start,
                end,
                step,
                body,
            } = stmts[idx].clone()
            else {
                unreachable!()
            };
            if body.iter().any(contains_loop) {
                continue; // handled above; defensive
            }
            let (Operand::ImmU(s0), Operand::ImmU(e0)) = (start, end) else {
                panic!("innermost loop bounds must be immediates to unroll")
            };
            assert!(
                !defines(&body, var),
                "body must not redefine the induction variable"
            );
            let trips =
                count::trip_count(s0, e0, step).expect("loop step must be positive to unroll");
            assert!(
                trips.is_multiple_of(factor as u64),
                "unroll factor {factor} must divide trip count {trips}"
            );
            if factor as u64 == trips {
                // Full unroll: splice immediate-substituted copies in place.
                let mut copies = Vec::with_capacity(body.len() * factor as usize);
                for t in 0..trips {
                    let mut c = body.clone();
                    substitute_uses(&mut c, var, Operand::ImmU(s0 + t as u32 * step));
                    copies.extend(c);
                }
                stmts.splice(idx..=idx, copies);
            } else {
                // Partial unroll: widen the step. Copy k>0 gets fresh names
                // for its temporaries (so address folding can CSE the copy-0
                // address computation) and addresses var + k·step through a
                // fresh register that folding absorbs into load offsets.
                let mut new_body = Vec::with_capacity(body.len() * factor as usize);
                for kcopy in 0..factor {
                    let mut c = body.clone();
                    if kcopy > 0 {
                        let mut map = HashMap::new();
                        rename_defs(&mut c, next_reg, &mut map);
                        let vk = Reg(*next_reg);
                        *next_reg += 1;
                        substitute_uses(&mut c, var, Operand::R(vk));
                        new_body.push(Stmt::I(Instr::Alu {
                            op: AluOp::IAdd,
                            dst: vk,
                            a: Operand::R(var),
                            b: Operand::ImmU(kcopy * step),
                        }));
                    }
                    new_body.extend(c);
                }
                stmts[idx] = Stmt::For {
                    var,
                    start,
                    end,
                    step: step * factor,
                    body: new_body,
                };
            }
            return true;
        }
    }
    false
}

/// Rename every register *defined* in `stmts` to a fresh name, rewriting
/// later uses within the same statements. Accumulators — instructions that
/// read their own destination (e.g. `acc += x`) — keep their register so the
/// reduction carries across unrolled copies.
fn rename_defs(stmts: &mut [Stmt], next_reg: &mut u16, map: &mut HashMap<Reg, Reg>) {
    let rewrite_use = |o: &mut Operand, map: &HashMap<Reg, Reg>| {
        if let Operand::R(r) = o {
            if let Some(n) = map.get(r) {
                *o = Operand::R(*n);
            }
        }
    };
    for s in stmts {
        match s {
            Stmt::I(i) => {
                // Rewrite uses through the current map.
                match i {
                    Instr::Mov { src, .. } => rewrite_use(src, map),
                    Instr::Special { .. } | Instr::Clock { .. } => {}
                    Instr::Alu { a, b, .. } => {
                        rewrite_use(a, map);
                        rewrite_use(b, map);
                    }
                    Instr::Mad { a, b, c, .. } => {
                        rewrite_use(a, map);
                        rewrite_use(b, map);
                        rewrite_use(c, map);
                    }
                    Instr::Unary { a, .. } => rewrite_use(a, map),
                    Instr::Setp { a, b, .. } => {
                        rewrite_use(a, map);
                        rewrite_use(b, map);
                    }
                    Instr::Ld { base, .. } => {
                        if let Some(n) = map.get(base) {
                            *base = *n;
                        }
                    }
                    Instr::St { srcs, base, .. } => {
                        for o in srcs {
                            rewrite_use(o, map);
                        }
                        if let Some(n) = map.get(base) {
                            *base = *n;
                        }
                    }
                }
                // Rename defs, except accumulators.
                let uses = i.uses();
                let defs = i.defs();
                let is_accumulator = defs.iter().any(|d| uses.contains(d));
                if !is_accumulator {
                    for d in defs {
                        let fresh = Reg(*next_reg);
                        *next_reg += 1;
                        map.insert(d, fresh);
                    }
                    match i {
                        Instr::Mov { dst, .. }
                        | Instr::Special { dst, .. }
                        | Instr::Alu { dst, .. }
                        | Instr::Mad { dst, .. }
                        | Instr::Unary { dst, .. }
                        | Instr::Clock { dst } => *dst = map[dst],
                        Instr::Ld { dsts, .. } => {
                            for d in dsts {
                                *d = map[d];
                            }
                        }
                        Instr::Setp { .. } | Instr::St { .. } => {}
                    }
                }
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => rename_defs(body, next_reg, map),
            Stmt::If { then, els, .. } => {
                rename_defs(then, next_reg, map);
                rename_defs(els, next_reg, map);
            }
            Stmt::Sync => {}
        }
    }
}

fn contains_loop(s: &Stmt) -> bool {
    match s {
        Stmt::For { .. } | Stmt::While { .. } => true,
        Stmt::If { then, els, .. } => {
            then.iter().any(contains_loop) || els.iter().any(contains_loop)
        }
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Loop-invariant code motion
// ---------------------------------------------------------------------------

/// Hoist loop-invariant pure instructions out of every loop, innermost-first,
/// to fixpoint. An instruction is invariant if it is pure arithmetic
/// (`Mov`/`Alu`/`Mad`/`Unary`), none of its source registers is defined
/// inside the loop (including the induction variable), and its destination
/// is defined exactly once in the loop.
pub fn licm(kernel: &Kernel) -> Kernel {
    let mut k = kernel.clone();
    loop {
        let mut changed = false;
        licm_walk(&mut k.body, &mut changed);
        if !changed {
            break;
        }
    }
    k.validate();
    k
}

fn licm_walk(stmts: &mut Vec<Stmt>, changed: &mut bool) {
    let mut idx = 0;
    while idx < stmts.len() {
        // Recurse into nested structures first.
        match &mut stmts[idx] {
            // Recurse inside While bodies but do not hoist across their
            // boundary (conservative: the loop may retire lanes early).
            Stmt::For { body, .. } | Stmt::While { body, .. } => licm_walk(body, changed),
            Stmt::If { then, els, .. } => {
                licm_walk(then, changed);
                licm_walk(els, changed);
            }
            _ => {}
        }
        if let Stmt::For { var, body, .. } = &stmts[idx] {
            let var = *var;
            // Count in-loop definitions of every register.
            let mut def_counts: HashMap<Reg, u32> = HashMap::new();
            collect_defs(body, &mut def_counts);
            *def_counts.entry(var).or_insert(0) += 1; // induction add defines var
            let mut hoisted: Vec<Stmt> = Vec::new();
            let mut hoisted_dsts: Vec<Reg> = Vec::new();
            if let Stmt::For { body, .. } = &mut stmts[idx] {
                let mut i = 0;
                while i < body.len() {
                    let invariant = match &body[i] {
                        Stmt::I(
                            ins @ (Instr::Mov { .. }
                            | Instr::Alu { .. }
                            | Instr::Mad { .. }
                            | Instr::Unary { .. }),
                        ) => {
                            let dst_once = ins.defs().iter().all(|d| def_counts.get(d) == Some(&1));
                            let srcs_invariant = ins
                                .uses()
                                .iter()
                                .all(|u| !def_counts.contains_key(u) || hoisted_dsts.contains(u));
                            dst_once && srcs_invariant
                        }
                        _ => false,
                    };
                    if invariant {
                        let s = body.remove(i);
                        if let Stmt::I(ins) = &s {
                            hoisted_dsts.extend(ins.defs());
                            for d in ins.defs() {
                                def_counts.remove(&d);
                            }
                        }
                        hoisted.push(s);
                        *changed = true;
                    } else {
                        i += 1;
                    }
                }
            }
            for h in hoisted {
                stmts.insert(idx, h);
                idx += 1;
            }
        }
        idx += 1;
    }
}

fn collect_defs(stmts: &[Stmt], out: &mut HashMap<Reg, u32>) {
    for s in stmts {
        match s {
            Stmt::I(i) => {
                for d in i.defs() {
                    *out.entry(d).or_insert(0) += 1;
                }
            }
            Stmt::For { var, body, .. } => {
                *out.entry(*var).or_insert(0) += 1;
                collect_defs(body, out);
            }
            Stmt::While { body, .. } => collect_defs(body, out),
            Stmt::If { then, els, .. } => {
                collect_defs(then, out);
                collect_defs(els, out);
            }
            Stmt::Sync => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Address folding
// ---------------------------------------------------------------------------

/// What is known about a register inside a straight-line segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Known {
    /// A u32 constant.
    Const(u32),
    /// `reg + offset` for some canonical register.
    RegPlus(Reg, u32),
}

/// Local integer constant propagation, `mad`/`add` strength reduction and
/// load/store offset folding, followed by dead-code elimination of integer
/// arithmetic whose results became unused.
///
/// Only u32 `Mov`/`IAdd`/`IMul`/`IShl`/`Mad` are touched; f32 arithmetic is
/// left alone (see module docs). Folding is per straight-line segment
/// (boundaries: loops, ifs, syncs), so loop-carried values are never folded.
pub fn fold_addressing(kernel: &Kernel) -> Kernel {
    let mut k = kernel.clone();
    fold_walk(&mut k.body);
    dce(&mut k);
    k.validate();
    k
}

/// Value-numbering table for integer `mad` results: key = (multiplicand base
/// register, immediate scale, addend base register) → (representative
/// destination, the constant offset baked into the representative).
type MadTable = HashMap<(Reg, u32, Reg), (Reg, u32)>;

fn fold_walk(stmts: &mut [Stmt]) {
    // Recurse first.
    for s in stmts.iter_mut() {
        match s {
            Stmt::For { body, .. } | Stmt::While { body, .. } => fold_walk(body),
            Stmt::If { then, els, .. } => {
                fold_walk(then);
                fold_walk(els);
            }
            _ => {}
        }
    }
    // Then fold each straight-line run in this list.
    let mut known: HashMap<Reg, Known> = HashMap::new();
    let mut mads: MadTable = HashMap::new();
    for s in stmts.iter_mut() {
        match s {
            Stmt::I(i) => fold_instr(i, &mut known, &mut mads),
            _ => {
                known.clear(); // segment boundary
                mads.clear();
            }
        }
    }
}

fn resolve(o: Operand, known: &HashMap<Reg, Known>) -> Operand {
    if let Operand::R(r) = o {
        if let Some(Known::Const(c)) = known.get(&r) {
            return Operand::ImmU(*c);
        }
    }
    o
}

fn fold_instr(i: &mut Instr, known: &mut HashMap<Reg, Known>, mads: &mut MadTable) {
    let defs = i.defs();
    // Invalidate everything that referenced a register this instruction is
    // about to redefine (the instruction's own new knowledge is added after).
    for d in &defs {
        known.remove(d);
        known.retain(|_, v| !matches!(v, Known::RegPlus(r, _) if r == d));
        mads.retain(|(a, _, c), (rep, _)| a != d && c != d && rep != d);
    }
    match i {
        Instr::Mov { dst, src } => {
            *src = resolve(*src, known);
            match *src {
                Operand::ImmU(c) => {
                    known.insert(*dst, Known::Const(c));
                }
                Operand::R(r) => {
                    let k = known.get(&r).copied().unwrap_or(Known::RegPlus(r, 0));
                    known.insert(*dst, k);
                }
                _ => {}
            }
        }
        Instr::Alu { op, dst, a, b } if !op.is_float() => {
            *a = resolve(*a, known);
            *b = resolve(*b, known);
            let k = match (*op, *a, *b) {
                (AluOp::IAdd, Operand::ImmU(x), Operand::ImmU(y)) => {
                    Some(Known::Const(x.wrapping_add(y)))
                }
                (AluOp::ISub, Operand::ImmU(x), Operand::ImmU(y)) => {
                    Some(Known::Const(x.wrapping_sub(y)))
                }
                (AluOp::IMul, Operand::ImmU(x), Operand::ImmU(y)) => {
                    Some(Known::Const(x.wrapping_mul(y)))
                }
                (AluOp::IShl, Operand::ImmU(x), Operand::ImmU(y)) => {
                    Some(Known::Const(x.wrapping_shl(y)))
                }
                (AluOp::IAnd, Operand::ImmU(x), Operand::ImmU(y)) => Some(Known::Const(x & y)),
                (AluOp::IMin, Operand::ImmU(x), Operand::ImmU(y)) => Some(Known::Const(x.min(y))),
                (AluOp::IAdd, Operand::R(r), Operand::ImmU(c))
                | (AluOp::IAdd, Operand::ImmU(c), Operand::R(r)) => Some(match known.get(&r) {
                    Some(Known::RegPlus(base, off)) => Known::RegPlus(*base, off.wrapping_add(c)),
                    _ => Known::RegPlus(r, c),
                }),
                _ => None,
            };
            if let Some(k) = k {
                known.insert(*dst, k);
            }
        }
        Instr::Mad {
            float: false,
            dst,
            a,
            b,
            c,
        } => {
            *a = resolve(*a, known);
            *b = resolve(*b, known);
            *c = resolve(*c, known);
            if let (Operand::ImmU(x), Operand::ImmU(y)) = (*a, *b) {
                // mad with a constant product degenerates to an add — the
                // fully-unrolled address pattern.
                let prod = x.wrapping_mul(y);
                let c2 = *c;
                *i = Instr::Alu {
                    op: AluOp::IAdd,
                    dst: *dst,
                    a: c2,
                    b: Operand::ImmU(prod),
                };
                fold_instr(i, known, mads);
                return;
            }
            if let (Operand::R(ra), Operand::ImmU(scale), Operand::R(rc)) = (*a, *b, *c) {
                // Canonicalize through reg+offset knowledge:
                // (x + ca)·s + (y + cc) = [x·s + y] + ca·s + cc.
                let (xa, ca) = match known.get(&ra) {
                    Some(Known::RegPlus(x, c)) => (*x, *c),
                    _ => (ra, 0),
                };
                let (yc, cc) = match known.get(&rc) {
                    Some(Known::RegPlus(y, c)) => (*y, *c),
                    _ => (rc, 0),
                };
                let extra = ca.wrapping_mul(scale).wrapping_add(cc);
                let key = (xa, scale, yc);
                match mads.get(&key) {
                    Some((rep, rep_off)) if *rep != *dst => {
                        // Same product computed earlier: this value is
                        // rep + (extra - rep_off); record it so loads fold.
                        known.insert(*dst, Known::RegPlus(*rep, extra.wrapping_sub(*rep_off)));
                    }
                    _ => {
                        mads.insert(key, (*dst, extra));
                    }
                }
            }
        }
        Instr::Ld { base, offset, .. } => {
            if let Some(Known::RegPlus(b, off)) = known.get(base) {
                *offset = offset.wrapping_add(*off);
                *base = *b;
            }
        }
        Instr::St {
            base, offset, srcs, ..
        } => {
            for o in srcs.iter_mut() {
                *o = resolve(*o, known);
            }
            if let Some(Known::RegPlus(b, off)) = known.get(base) {
                *offset = offset.wrapping_add(*off);
                *base = *b;
            }
        }
        _ => {}
    }
}

/// Remove pure integer instructions whose destinations are never used
/// anywhere in the kernel (the `mad`s the folding absorbed into offsets).
fn dce(kernel: &mut Kernel) {
    loop {
        let mut used: HashMap<Reg, u32> = HashMap::new();
        count_uses(&kernel.body, &mut used);
        let mut removed = false;
        dce_walk(&mut kernel.body, &used, &mut removed);
        if !removed {
            break;
        }
    }
}

fn count_uses(stmts: &[Stmt], out: &mut HashMap<Reg, u32>) {
    for s in stmts {
        match s {
            Stmt::I(i) => {
                for u in i.uses() {
                    *out.entry(u).or_insert(0) += 1;
                }
            }
            Stmt::For {
                start, end, body, ..
            } => {
                for o in [start, end] {
                    if let Operand::R(r) = o {
                        *out.entry(*r).or_insert(0) += 1;
                    }
                }
                count_uses(body, out);
            }
            Stmt::While { body, .. } => count_uses(body, out),
            Stmt::If { then, els, .. } => {
                count_uses(then, out);
                count_uses(els, out);
            }
            Stmt::Sync => {}
        }
    }
}

fn dce_walk(stmts: &mut Vec<Stmt>, used: &HashMap<Reg, u32>, removed: &mut bool) {
    stmts.retain(|s| match s {
        Stmt::I(i @ (Instr::Mov { .. } | Instr::Alu { .. } | Instr::Mad { .. })) => {
            let is_float = match i {
                Instr::Alu { op, .. } => op.is_float(),
                Instr::Mad { float, .. } => *float,
                _ => false,
            };
            let dead = !is_float && i.defs().iter().all(|d| !used.contains_key(d));
            if dead {
                *removed = true;
            }
            !dead
        }
        _ => true,
    });
    for s in stmts.iter_mut() {
        match s {
            Stmt::For { body, .. } | Stmt::While { body, .. } => dce_walk(body, used, removed),
            Stmt::If { then, els, .. } => {
                dce_walk(then, used, removed);
                dce_walk(els, used, removed);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::count::{dynamic_instructions, inner_loop_profile};
    use crate::ir::regalloc::register_demand;
    use crate::ir::KernelBuilder;

    /// A miniature of the force kernel's inner loop: addresses computed with
    /// mad, a shared-memory load, float work, an accumulator. With
    /// `eps2_hoisted` the invariant multiply sits before the loop; otherwise
    /// it is recomputed every iteration (the pre-ICM shape).
    fn mini_kernel(eps2_hoisted: bool) -> Kernel {
        let mut b = KernelBuilder::new("mini");
        let base = b.param();
        let out = b.param();
        let eps_param = b.param();
        // Copy ε out of param space, as nvcc does for values consumed in an
        // inner loop (params themselves cost no registers — see regalloc).
        let eps = b.mov(eps_param.into());
        let acc = b.mov(Operand::ImmF(0.0));
        let eps2_pre = if eps2_hoisted {
            Some(b.fmul(eps.into(), eps.into()))
        } else {
            None
        };
        b.for_loop(Operand::ImmU(0), Operand::ImmU(8), 1, |b, j| {
            let addr = b.mad_u(j.into(), Operand::ImmU(4), base.into());
            let x = b.ld(MemSpace::Shared, addr, 0, 1)[0];
            let e2 = match eps2_pre {
                Some(r) => r,
                None => b.fmul(eps.into(), eps.into()),
            };
            let y = b.fadd(x.into(), e2.into());
            b.alu_into(acc, AluOp::FAdd, acc.into(), y.into());
        });
        b.st(MemSpace::Global, out, 0, vec![acc.into()]);
        b.finish()
    }

    #[test]
    fn full_unroll_removes_loop_and_folds_addresses() {
        let k = mini_kernel(true);
        let u = unroll_innermost(&k, 8);
        assert!(inner_loop_profile(&u).is_none(), "loop should be gone");
        // No mad_u should survive: addresses are folded into load offsets.
        let mut mads = 0;
        let mut offsets = Vec::new();
        u.visit_stmts(&mut |s| {
            if let Stmt::I(Instr::Mad { float: false, .. }) = s {
                mads += 1;
            }
            if let Stmt::I(Instr::Ld { offset, .. }) = s {
                offsets.push(*offset);
            }
        });
        assert_eq!(mads, 0, "address mads must fold away");
        assert_eq!(
            offsets,
            vec![0, 4, 8, 12, 16, 20, 24, 28],
            "hard-coded offsets"
        );
    }

    #[test]
    fn full_unroll_reduces_dynamic_instructions() {
        let k = mini_kernel(true);
        let u = unroll_innermost(&k, 8);
        let params = &[0u32, 0, 0];
        let before = dynamic_instructions(&k, params).unwrap();
        let after = dynamic_instructions(&u, params).unwrap();
        // Per iteration: mad + overhead(3) gone, minus the one-time init mov.
        assert_eq!(before - after, 8 * 4 + 1);
    }

    #[test]
    fn full_unroll_frees_the_induction_register() {
        let k = mini_kernel(true);
        let u = unroll_innermost(&k, 8);
        let before = register_demand(&k).max_live;
        let after = register_demand(&u).max_live;
        assert!(
            before > after,
            "unrolling must reduce register pressure ({before} -> {after})"
        );
    }

    #[test]
    fn partial_unroll_preserves_loop_and_divides_overhead() {
        let k = mini_kernel(true);
        let u = unroll_innermost(&k, 4);
        let p = inner_loop_profile(&u).expect("loop still present");
        assert_eq!(p.overhead_instrs, 3);
        let params = &[0u32, 0, 0];
        let d_rolled = dynamic_instructions(&k, params).unwrap();
        let d_partial = dynamic_instructions(&u, params).unwrap();
        assert!(d_partial < d_rolled);
        // Overhead now paid twice (8/4) instead of 8 times.
        let full = dynamic_instructions(&unroll_innermost(&k, 8), params).unwrap();
        assert!(d_partial > full);
    }

    #[test]
    #[should_panic]
    fn non_dividing_factor_rejected() {
        unroll_innermost(&mini_kernel(true), 3);
    }

    #[test]
    fn licm_hoists_the_invariant_multiply() {
        let k = mini_kernel(false); // eps² recomputed in-loop
        let h = licm(&k);
        // The in-loop fmul(eps,eps) moves out: loop body shrinks by one.
        let before = inner_loop_profile(&k).unwrap().body_instrs;
        let after = inner_loop_profile(&h).unwrap().body_instrs;
        assert_eq!(before - after, 1);
        // And register pressure drops by one (eps no longer live in loop).
        let rb = register_demand(&k).max_live;
        let ra = register_demand(&h).max_live;
        assert_eq!(rb - ra, 1);
    }

    #[test]
    fn licm_does_not_touch_variant_code() {
        let k = mini_kernel(true); // eps² already hoisted by construction
        let h = licm(&k);
        assert_eq!(
            inner_loop_profile(&k).unwrap().body_instrs,
            inner_loop_profile(&h).unwrap().body_instrs
        );
    }

    #[test]
    fn fold_keeps_semantics_simple_case() {
        // mov a, 8; mad r, a, 4, base; ld [r] == ld [base+32]
        let mut b = KernelBuilder::new("fold");
        let base = b.param();
        let a = b.mov(Operand::ImmU(8));
        let r = b.mad_u(a.into(), Operand::ImmU(4), base.into());
        let _v = b.ld(MemSpace::Global, r, 0, 1);
        let k = fold_addressing(&b.finish());
        let mut lds = Vec::new();
        k.visit_stmts(&mut |s| {
            if let Stmt::I(Instr::Ld { base, offset, .. }) = s {
                lds.push((*base, *offset));
            }
        });
        assert_eq!(lds, vec![(base, 32)]);
        // The mov and mad are dead and removed.
        let mut n = 0;
        k.visit_stmts(&mut |_| n += 1);
        assert_eq!(n, 1);
    }

    #[test]
    fn fold_respects_segment_boundaries() {
        // Knowledge must not flow across a loop boundary: the loop-carried
        // induction value is not a constant.
        let mut b = KernelBuilder::new("seg");
        let base = b.param();
        b.for_loop(Operand::ImmU(0), Operand::ImmU(4), 1, |b, j| {
            let addr = b.mad_u(j.into(), Operand::ImmU(4), base.into());
            let _ = b.ld(MemSpace::Global, addr, 0, 1);
        });
        let k = fold_addressing(&b.finish());
        let mut mads = 0;
        k.visit_stmts(&mut |s| {
            if let Stmt::I(Instr::Mad { float: false, .. }) = s {
                mads += 1;
            }
        });
        assert_eq!(mads, 1, "in-loop mad with live induction var must survive");
    }

    #[test]
    fn dce_never_removes_float_ops() {
        let mut b = KernelBuilder::new("fp");
        let x = b.mov(Operand::ImmF(1.0));
        let _dead_float = b.fmul(x.into(), x.into());
        let k = fold_addressing(&b.finish());
        let mut fmuls = 0;
        k.visit_stmts(&mut |s| {
            if let Stmt::I(Instr::Alu {
                op: AluOp::FMul, ..
            }) = s
            {
                fmuls += 1;
            }
        });
        assert_eq!(fmuls, 1);
    }
}
