//! Device-fault taxonomy and the fault-injection harness.
//!
//! Every misuse of the simulated device — out-of-bounds or misaligned
//! accesses, allocator exhaustion, bad launch geometry, reads of
//! never-written memory — is reported as a typed [`DeviceError`] carrying
//! the fault coordinates (kernel, block, thread, instruction), in the shape
//! of `compute-sanitizer` for real CUDA. Layout bugs (the paper's whole
//! subject) therefore surface at the faulting instruction as a reportable
//! value the application can catch, log and degrade around, instead of a
//! process-killing panic or — worse — silently wrong physics.
//!
//! The module also hosts the **fault-injection harness** ([`FaultPlan`]):
//! a test-facing hook that mutates the effective address of a chosen
//! (block, thread, instruction) memory access in the functional executor,
//! used to prove each fault class is detected and attributed correctly.

use crate::ir::MemSpace;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Result alias for every fallible device operation.
pub type DeviceResult<T> = Result<T, DeviceError>;

/// What went wrong on the device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// An access touched bytes outside any live allocation (or outside the
    /// address space entirely). `redzone` is set when the access landed in a
    /// guard band adjacent to a live allocation — the signature of an
    /// off-by-one stride or padding bug.
    OutOfBounds {
        /// Memory space of the access.
        space: MemSpace,
        /// Faulting byte address.
        addr: u64,
        /// Access width in bytes.
        width: u64,
        /// Capacity of the space (global capacity or shared-memory size).
        limit: u64,
        /// Whether the access landed in an inter-allocation redzone.
        redzone: bool,
    },
    /// An access violated the natural-alignment rule (a `width`-byte access
    /// must be `width`-aligned, as CUDA requires for vector types).
    Misaligned {
        /// Memory space of the access.
        space: MemSpace,
        /// Faulting byte address.
        addr: u64,
        /// Access width in bytes.
        width: u64,
    },
    /// A load read bytes that were allocated but never written (poison fill).
    UninitializedRead {
        /// Faulting byte address.
        addr: u64,
        /// Access width in bytes.
        width: u64,
    },
    /// The allocator could not satisfy a request. Recoverable by
    /// construction: the caller can free memory, shrink the working set
    /// (chunked execution), or fall back to the host.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes still free (capacity minus allocations, redzones and
        /// alignment padding).
        free: u64,
        /// Total capacity of the memory.
        capacity: u64,
    },
    /// `free` was called with a pointer that is not the most recent live
    /// allocation (the bump allocator frees in strict LIFO order).
    InvalidFree {
        /// The pointer passed to `free`.
        ptr: u64,
        /// Base of the allocation that could legally be freed, if any.
        expected: Option<u64>,
    },
    /// Invalid launch geometry or kernel-parameter mismatch.
    BadLaunch {
        /// Human-readable explanation.
        reason: String,
    },
    /// A store hit read-only memory (the texture space).
    ReadOnlyWrite {
        /// Memory space of the store.
        space: MemSpace,
        /// Faulting byte address.
        addr: u64,
    },
    /// Warps could not all reach a barrier (divergent `__syncthreads`).
    Deadlock {
        /// Human-readable explanation.
        reason: String,
    },
    /// A loop branch diverged where the engine requires warp uniformity.
    DivergentBranch {
        /// Active-lane mask at the branch.
        mask: u32,
        /// Lanes that took the branch.
        taken: u32,
    },
    /// Invalid host-side model configuration (e.g. a non-positive PCIe
    /// bandwidth, or an extrapolation outside its validity regime).
    BadConfig {
        /// Human-readable explanation.
        reason: String,
    },
    /// ECC-style checksum mismatch detected on readback: a device word was
    /// corrupted outside any legitimate store path (a soft error). Transient:
    /// re-uploading and re-running the frame is expected to succeed.
    EccMismatch {
        /// Address of the first corrupted 32-bit word.
        addr: u64,
        /// Checksum recorded when the word was last legitimately written.
        expected: u8,
        /// Checksum recomputed from the (corrupted) data at readback.
        actual: u8,
    },
    /// The kernel exceeded its step budget and was killed by the watchdog
    /// (a hung or runaway kernel). Transient from the application's view:
    /// the launch can be retried.
    WatchdogTimeout {
        /// The configured step budget (warp instructions or cycles).
        budget: u64,
        /// Steps executed when the watchdog fired.
        executed: u64,
    },
    /// The driver transiently refused the launch (spurious
    /// `CUDA_ERROR_LAUNCH_FAILED`-style error); retrying is expected to
    /// succeed.
    TransientLaunch {
        /// Human-readable explanation.
        reason: String,
    },
    /// A downloaded result contained a NaN or infinity — corrupted or
    /// numerically exploded physics that must not propagate silently into
    /// the integrator.
    NonFiniteResult {
        /// Index of the first non-finite element (body index).
        index: u64,
    },
}

impl FaultKind {
    /// Stable, short name of the fault class.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::OutOfBounds { .. } => "OutOfBounds",
            FaultKind::Misaligned { .. } => "Misaligned",
            FaultKind::UninitializedRead { .. } => "UninitializedRead",
            FaultKind::OutOfMemory { .. } => "OutOfMemory",
            FaultKind::InvalidFree { .. } => "InvalidFree",
            FaultKind::BadLaunch { .. } => "BadLaunch",
            FaultKind::ReadOnlyWrite { .. } => "ReadOnlyWrite",
            FaultKind::Deadlock { .. } => "Deadlock",
            FaultKind::DivergentBranch { .. } => "DivergentBranch",
            FaultKind::BadConfig { .. } => "BadConfig",
            FaultKind::EccMismatch { .. } => "EccMismatch",
            FaultKind::WatchdogTimeout { .. } => "WatchdogTimeout",
            FaultKind::TransientLaunch { .. } => "TransientLaunch",
            FaultKind::NonFiniteResult { .. } => "NonFiniteResult",
        }
    }

    /// Whether this fault class is *transient*: retrying the operation (after
    /// re-uploading from host state) is expected to succeed. Permanent faults
    /// — program bugs like out-of-bounds accesses, misalignment, deadlocks —
    /// recur deterministically and must not be retried.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            FaultKind::EccMismatch { .. }
                | FaultKind::WatchdogTimeout { .. }
                | FaultKind::TransientLaunch { .. }
                | FaultKind::NonFiniteResult { .. }
        )
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::OutOfBounds {
                space,
                addr,
                width,
                limit,
                redzone,
            } => {
                let zone = if *redzone {
                    " (in a redzone guard band)"
                } else {
                    ""
                };
                write!(
                    f,
                    "{width}-byte {space:?} access at {addr:#x} is out of bounds{zone}; space limit {limit:#x}"
                )
            }
            FaultKind::Misaligned { space, addr, width } => {
                write!(f, "misaligned {width}-byte {space:?} access at {addr:#x}")
            }
            FaultKind::UninitializedRead { addr, width } => {
                write!(
                    f,
                    "{width}-byte load of uninitialized (poison) memory at {addr:#x}"
                )
            }
            FaultKind::OutOfMemory {
                requested,
                free,
                capacity,
            } => {
                write!(
                    f,
                    "device out of memory: requested {requested} B with {free} B free of {capacity} B"
                )
            }
            FaultKind::InvalidFree { ptr, expected } => match expected {
                Some(e) => write!(
                    f,
                    "invalid free of {ptr:#x}: the bump allocator frees LIFO, expected {e:#x}"
                ),
                None => write!(f, "invalid free of {ptr:#x}: no live allocations"),
            },
            FaultKind::BadLaunch { reason } => write!(f, "bad launch: {reason}"),
            FaultKind::ReadOnlyWrite { space, addr } => {
                write!(f, "store to read-only {space:?} memory at {addr:#x}")
            }
            FaultKind::Deadlock { reason } => write!(f, "deadlock: {reason}"),
            FaultKind::DivergentBranch { mask, taken } => {
                write!(
                    f,
                    "divergent loop branch: active mask {mask:#010x}, taken {taken:#010x}"
                )
            }
            FaultKind::BadConfig { reason } => write!(f, "bad configuration: {reason}"),
            FaultKind::EccMismatch {
                addr,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "ECC checksum mismatch at {addr:#x}: stored {expected:#04x}, recomputed {actual:#04x} (soft error)"
                )
            }
            FaultKind::WatchdogTimeout { budget, executed } => {
                write!(
                    f,
                    "watchdog killed the kernel after {executed} steps (budget {budget})"
                )
            }
            FaultKind::TransientLaunch { reason } => {
                write!(f, "transient launch failure: {reason}")
            }
            FaultKind::NonFiniteResult { index } => {
                write!(
                    f,
                    "non-finite value in downloaded results at element {index}"
                )
            }
        }
    }
}

/// Where a fault happened. Coordinates are filled in as the error propagates
/// outward: the memory system knows nothing, the warp stepper attaches
/// (block, thread, instruction), and the launch wrappers attach the kernel
/// name. Each is set at most once — the innermost (most precise) value wins.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSite {
    /// Kernel name, once known.
    pub kernel: Option<String>,
    /// `blockIdx.x` of the faulting thread.
    pub block: Option<u32>,
    /// Linear thread index within the block.
    pub thread: Option<u32>,
    /// Retired-instruction index of the faulting warp at the fault.
    pub instruction: Option<u64>,
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if let Some(k) = &self.kernel {
            parts.push(format!("kernel `{k}`"));
        }
        if let Some(b) = self.block {
            parts.push(format!("block {b}"));
        }
        if let Some(t) = self.thread {
            parts.push(format!("thread {t}"));
        }
        if let Some(i) = self.instruction {
            parts.push(format!("instruction {i}"));
        }
        if parts.is_empty() {
            write!(f, "host-side API call")
        } else {
            write!(f, "{}", parts.join(", "))
        }
    }
}

/// A typed device fault: what went wrong, and where.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceError {
    /// The fault class and payload.
    pub kind: FaultKind,
    /// Fault coordinates.
    pub site: FaultSite,
}

impl DeviceError {
    /// A fault with no coordinates yet.
    pub fn new(kind: FaultKind) -> Self {
        DeviceError {
            kind,
            site: FaultSite::default(),
        }
    }

    /// Attach the kernel name, unless already known.
    pub fn with_kernel(mut self, name: &str) -> Self {
        if self.site.kernel.is_none() {
            self.site.kernel = Some(name.to_string());
        }
        self
    }

    /// Attach the block index, unless already known.
    pub fn with_block(mut self, block: u32) -> Self {
        if self.site.block.is_none() {
            self.site.block = Some(block);
        }
        self
    }

    /// Attach the thread index, unless already known.
    pub fn with_thread(mut self, thread: u32) -> Self {
        if self.site.thread.is_none() {
            self.site.thread = Some(thread);
        }
        self
    }

    /// Attach the retired-instruction index, unless already known.
    pub fn with_instruction(mut self, instruction: u64) -> Self {
        if self.site.instruction.is_none() {
            self.site.instruction = Some(instruction);
        }
        self
    }

    /// Multi-line, human-readable sanitizer report (the `compute-sanitizer`
    /// shape) for logs and the CLI.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("========= DEVICE FAULT: {}\n", self.kind.name()));
        out.push_str(&format!("=========   {}\n", self.kind));
        if let Some(k) = &self.site.kernel {
            out.push_str(&format!("=========   kernel:      {k}\n"));
        }
        if let Some(b) = self.site.block {
            out.push_str(&format!("=========   block:       {b}\n"));
        }
        if let Some(t) = self.site.thread {
            out.push_str(&format!("=========   thread:      {t}\n"));
        }
        if let Some(i) = self.site.instruction {
            out.push_str(&format!("=========   instruction: {i}\n"));
        }
        out.push_str("=========");
        out
    }
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] at {}", self.kind.name(), self.kind, self.site)
    }
}

impl std::error::Error for DeviceError {}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// How an injected fault perturbs the effective address of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Add a signed delta to the lane's effective address (wrapping).
    AddrDelta(i64),
    /// Replace the lane's effective address outright.
    SetAddr(u64),
}

/// One injected fault: at the given (block, thread, retired-instruction)
/// coordinate, mutate the effective address of that thread's memory access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// `blockIdx.x` to strike.
    pub block: u32,
    /// Linear thread index within the block to strike.
    pub thread: u32,
    /// Warp retired-instruction index at which to strike.
    pub instruction: u64,
    /// The address perturbation.
    pub mutation: Mutation,
}

/// A set of injected faults, threaded through the functional executor by
/// [`crate::exec::functional::run_grid_injected`]. Used by the test suite to
/// prove that every fault class is detected and attributed to the exact
/// thread — never enabled on the normal execution paths.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The faults to inject.
    pub faults: Vec<InjectedFault>,
}

/// Wildcard for [`InjectedFault::instruction`]: strike every memory access of
/// the targeted (block, thread) pair, whichever instruction it retires at.
pub const ANY_INSTRUCTION: u64 = u64::MAX;

impl FaultPlan {
    /// A plan with a single injected fault.
    pub fn single(block: u32, thread: u32, instruction: u64, mutation: Mutation) -> Self {
        FaultPlan {
            faults: vec![InjectedFault {
                block,
                thread,
                instruction,
                mutation,
            }],
        }
    }

    /// A plan striking every memory access of one thread (see
    /// [`ANY_INSTRUCTION`]) — robust against instruction-schedule changes.
    pub fn at_thread(block: u32, thread: u32, mutation: Mutation) -> Self {
        Self::single(block, thread, ANY_INSTRUCTION, mutation)
    }

    /// Mutate `addr` if a fault is registered for this coordinate.
    pub fn mutate(&self, block: u32, thread: u32, instruction: u64, addr: u64) -> u64 {
        let mut a = addr;
        for f in &self.faults {
            if f.block == block
                && f.thread == thread
                && (f.instruction == instruction || f.instruction == ANY_INSTRUCTION)
            {
                a = match f.mutation {
                    Mutation::AddrDelta(d) => a.wrapping_add_signed(d),
                    Mutation::SetAddr(v) => v,
                };
            }
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_fills_innermost_first() {
        let e = DeviceError::new(FaultKind::BadLaunch { reason: "x".into() })
            .with_thread(7)
            .with_thread(9) // outer attempt must not override
            .with_block(2)
            .with_kernel("k");
        assert_eq!(e.site.thread, Some(7));
        assert_eq!(e.site.block, Some(2));
        assert_eq!(e.site.kernel.as_deref(), Some("k"));
        assert_eq!(e.site.instruction, None);
    }

    #[test]
    fn report_names_the_fault_class_and_coordinates() {
        let e = DeviceError::new(FaultKind::OutOfBounds {
            space: MemSpace::Global,
            addr: 0x1000,
            width: 16,
            limit: 0x800,
            redzone: true,
        })
        .with_block(3)
        .with_thread(17)
        .with_instruction(42)
        .with_kernel("force");
        let r = e.report();
        assert!(r.contains("OutOfBounds"));
        assert!(r.contains("redzone"));
        assert!(r.contains("force"));
        assert!(r.contains("block:       3"));
        assert!(r.contains("thread:      17"));
        assert!(r.contains("instruction: 42"));
    }

    #[test]
    fn plan_strikes_only_its_coordinate() {
        let p = FaultPlan::single(1, 33, 5, Mutation::AddrDelta(-4));
        assert_eq!(p.mutate(1, 33, 5, 100), 96);
        assert_eq!(p.mutate(1, 33, 4, 100), 100);
        assert_eq!(p.mutate(1, 32, 5, 100), 100);
        assert_eq!(p.mutate(0, 33, 5, 100), 100);
        let s = FaultPlan::single(0, 0, 0, Mutation::SetAddr(0xdead));
        assert_eq!(s.mutate(0, 0, 0, 4), 0xdead);
    }

    #[test]
    fn display_is_one_line_and_informative() {
        let e = DeviceError::new(FaultKind::Misaligned {
            space: MemSpace::Global,
            addr: 0x1c,
            width: 16,
        });
        let s = e.to_string();
        assert!(s.contains("Misaligned"));
        assert!(s.contains("0x1c"));
        assert!(!s.contains('\n'));
    }
}
