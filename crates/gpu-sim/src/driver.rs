//! Driver/compiler revisions the paper compares.
//!
//! Figure 10 of the paper runs the same kernels under CUDA 1.0, 1.1 and 2.2
//! and finds materially different memory behaviour. A driver revision in this
//! model selects (a) the global-memory **coalescing protocol** used by
//! [`crate::coalesce`] and (b) a set of **timing constants**
//! ([`crate::timing::TimingParams::for_driver`]).
//!
//! * `Cuda10` — the strict CC-1.0 half-warp rule: a non-coalescible access
//!   pattern decays into one transaction per thread.
//! * `Cuda11` — same hardware rule, but the paper observed that "NVIDIA
//!   significantly changed how unoptimized memory accesses are handled".
//!   The authors could not determine the mechanism; we model it as driver-side
//!   merging of same-128-byte-line requests (a hypothesis, flagged as such in
//!   DESIGN.md), which reproduces the flattened profile they measured.
//! * `Cuda22` — the CC-1.2-style segment protocol (find touched segments,
//!   reduce transaction size), which the 2.2 toolchain exposed.

use serde::{Deserialize, Serialize};

/// A CUDA driver/compiler revision from the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DriverModel {
    /// CUDA 1.0: strict half-warp coalescing, per-thread fallback.
    Cuda10,
    /// CUDA 1.1: strict rule plus driver-side same-line merging (model
    /// hypothesis for the paper's unexplained observation).
    Cuda11,
    /// CUDA 2.2: segment-based coalescing with transaction-size reduction.
    Cuda22,
}

impl DriverModel {
    /// All revisions, in the order the paper plots them.
    pub const ALL: [DriverModel; 3] = [
        DriverModel::Cuda10,
        DriverModel::Cuda11,
        DriverModel::Cuda22,
    ];

    /// Human-readable label used in tables and figures.
    pub fn label(self) -> &'static str {
        match self {
            DriverModel::Cuda10 => "CUDA 1.0",
            DriverModel::Cuda11 => "CUDA 1.1",
            DriverModel::Cuda22 => "CUDA 2.2",
        }
    }
}

impl core::fmt::Display for DriverModel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<_> = DriverModel::ALL.iter().map(|d| d.label()).collect();
        assert_eq!(labels, vec!["CUDA 1.0", "CUDA 1.1", "CUDA 2.2"]);
    }
}
