//! # Galaxy collision — the Gravit showcase workload
//!
//! Two disk galaxies on a collision course, integrated with leapfrog on the
//! Rayon CPU backend, with energy/momentum diagnostics and a JSON recording —
//! the "beautiful looking gravity patterns" the paper credits Gravit with.
//!
//! Run: `cargo run --release --example galaxy_collision [-- --n 4000 --steps 200]`

use gravit_app::backend::Backend;
use gravit_app::config::{Integrator, SimConfig, SpawnKind};
use gravit_app::recorder::Recording;
use gravit_app::sim::Simulation;
use simcore::format_duration_s;
use std::time::Instant;

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n = arg("--n", 3000) as usize;
    let steps = arg("--steps", 150);
    let cfg = SimConfig {
        n,
        spawn: SpawnKind::Collision {
            separation: 18.0,
            approach_speed: 0.35,
        },
        seed: 2009,
        dt: 0.01,
        integrator: Integrator::Leapfrog,
        backend: Backend::CpuParallel,
        ..SimConfig::default()
    };
    println!(
        "Colliding galaxies: n={n}, {steps} steps, backend={}",
        cfg.backend.label()
    );

    let t0 = Instant::now();
    let mut sim = Simulation::new(cfg).expect("no device faults in a healthy run");
    let mut rec = Recording::new(n, (n / 1000).max(1));
    rec.capture(&sim);

    let com0 = sim.bodies.center_of_mass();
    for s in 1..=steps {
        sim.step().expect("no device faults in a healthy run");
        if s % 10 == 0 {
            rec.capture(&sim);
            println!(
                "  t={:>6.2}  energy drift {:>9.2e}  |momentum| {:>9.2e}",
                sim.time,
                sim.energy_drift(),
                sim.momentum_magnitude()
            );
        }
    }
    let com1 = sim.bodies.center_of_mass();
    println!(
        "done in {} — COM moved {:.3} (ballistic drift of the approaching pair)",
        format_duration_s(t0.elapsed().as_secs_f64()),
        com0.distance(com1)
    );

    let path = std::env::temp_dir().join("gravit_collision.json");
    rec.write(&path).expect("write recording");
    println!(
        "recording: {} ({} frames)",
        path.display(),
        rec.frames.len()
    );
    assert!(
        sim.energy_drift() < 0.2,
        "energy diverged — integration unstable"
    );
}
