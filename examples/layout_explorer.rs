//! # Layout explorer — apply the paper's 3-step procedure to YOUR struct
//!
//! Demonstrates the layout advisor on structures beyond the Gravit particle:
//! an SPH particle, a ray-tracing hit record, and a molecular-dynamics atom —
//! printing the SoAoaS decomposition and the predicted per-half-warp traffic
//! against the naive packed layout, plus the membench-measured cycles for the
//! particle case.
//!
//! Run: `cargo run --release --example layout_explorer`

use gravit_core::layout_advisor::{optimize_layout, AccessFreq, FieldSpec, StructSchema};
use gravit_core::substrates::gpu_sim::DriverModel;
use gravit_core::substrates::particle_layouts::Layout;

fn show(name: &str, schema: &StructSchema) {
    let plan = optimize_layout(schema);
    println!("\n{name} ({} words payload):", schema.words());
    for (gi, g) in plan.groups.iter().enumerate() {
        let members: Vec<&str> = g
            .fields
            .iter()
            .map(|&i| plan.schema.fields[i].name.as_str())
            .collect();
        println!(
            "  array {gi}: {{{}}} — {}/{} words used ({:?})",
            members.join(", "),
            g.used_words,
            g.padded_words,
            g.freq
        );
    }
    println!(
        "  transactions/half-warp: {} -> {} ({:.1}x), padding overhead {:.0}%",
        plan.baseline_transactions,
        plan.optimized_transactions,
        plan.transaction_improvement(),
        100.0 * plan.padding_overhead()
    );
}

fn main() {
    show(
        "Gravit particle (the paper's case)",
        &StructSchema::gravit_particle(),
    );

    show(
        "SPH particle",
        &StructSchema::new(vec![
            FieldSpec::scalar("x", AccessFreq::Hot),
            FieldSpec::scalar("y", AccessFreq::Hot),
            FieldSpec::scalar("z", AccessFreq::Hot),
            FieldSpec::scalar("h", AccessFreq::Hot), // smoothing length
            FieldSpec::scalar("density", AccessFreq::Warm),
            FieldSpec::scalar("pressure", AccessFreq::Warm),
            FieldSpec::scalar("vx", AccessFreq::Warm),
            FieldSpec::scalar("vy", AccessFreq::Warm),
            FieldSpec::scalar("vz", AccessFreq::Warm),
            FieldSpec::scalar("temperature", AccessFreq::Cold),
            FieldSpec::scalar("entropy", AccessFreq::Cold),
        ]),
    );

    show(
        "MD atom",
        &StructSchema::new(vec![
            FieldSpec::wide("position", 3, AccessFreq::Hot),
            FieldSpec::scalar("charge", AccessFreq::Hot),
            FieldSpec::wide("velocity", 3, AccessFreq::Warm),
            FieldSpec::scalar("type_id", AccessFreq::Warm),
            FieldSpec::wide("force_accum", 3, AccessFreq::Warm),
            FieldSpec::scalar("flags", AccessFreq::Cold),
        ]),
    );

    // And the measured (simulated) cycles for the Gravit case, per layout.
    println!("\nMeasured cycles per 4-byte element (membench, CUDA 1.0 model):");
    for layout in Layout::ALL {
        let r = bench::membench_harness::run_membench(layout, DriverModel::Cuda10);
        println!(
            "  {:<8} {:>8.1} cycles ({} transactions)",
            layout.label(),
            r.avg_cycles_per_read,
            r.transactions
        );
    }
}
