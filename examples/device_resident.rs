//! # Device-resident stepping + kernel disassembly
//!
//! The full shape of the paper's Gravit port: upload the particle state once,
//! alternate force and integration kernels on the (simulated) device, and
//! download at the end — with the kernels' PTX-flavoured disassembly printed
//! so the unrolling/ICM effects of Sec. IV-A are visible as code, not just as
//! counters.
//!
//! Run: `cargo run --release --example device_resident`

use gravit_app::backend::{run_device_resident, Backend};
use gravit_core::substrates::gpu_kernels::force::{
    build_force_kernel, ForceKernelConfig, OptLevel,
};
use gravit_core::substrates::gpu_kernels::integrate::build_integrate_kernel;
use gravit_core::substrates::gpu_sim::ir::pretty::disassemble;
use gravit_core::substrates::nbody::{self, model::ForceParams};
use gravit_core::substrates::particle_layouts::Layout;
use nbody::integrator::step_euler;

fn main() {
    // 1. Show what the optimization passes do to the inner loop.
    let rolled = build_force_kernel(ForceKernelConfig {
        layout: Layout::SoAoaS,
        block: 128,
        unroll: 1,
        icm: false,
    });
    let text = disassemble(&rolled);
    println!("Rolled inner loop (note the mad.u32 address and the loop overhead):\n");
    for line in text
        .lines()
        .filter(|l| l.contains("for ") || l.contains("mad.u32") || l.contains("rsqrt"))
    {
        println!("  {}", line.trim_start());
    }
    let full = build_force_kernel(OptLevel::Full.config());
    let text = disassemble(&full);
    let offsets = text.lines().filter(|l| l.contains("ld.shared.v4")).count();
    println!("\nFully unrolled + ICM: no `for`, {offsets} shared loads with hard-coded offsets.");
    println!("(the paper: \"an additional add to calculate the address offset that now is hard coded\")\n");

    // 2. Device-resident run vs host loop: bit-identical trajectories.
    let fp = ForceParams {
        g: 1.0,
        softening: 0.05,
    };
    let dt = 0.01f32;
    let steps = 8u32;
    let bodies0 = nbody::spawn::disk_galaxy(1024, 5.0, 1.0, fp.g, 77);

    let mut host = bodies0.clone();
    for _ in 0..steps {
        let acc = Backend::CpuSerial.accelerations(&host, &fp);
        step_euler(&mut host, &acc, dt, None);
    }
    let device = run_device_resident(&bodies0, &fp, dt, steps, OptLevel::Full)
        .expect("no device faults in a healthy run");
    assert_eq!(host, device);
    println!("{steps} device-resident steps at n=1024: bit-identical to the host loop ✓");

    // 3. The integration kernel is tiny and loop-free.
    let integ = build_integrate_kernel(Layout::SoAoaS);
    println!(
        "\nIntegration kernel ({} instructions):",
        disassemble(&integ).lines().count() - 2
    );
    print!("{}", disassemble(&integ));
}
