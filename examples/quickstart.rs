//! # Quickstart — the paper's pipeline in one page
//!
//! Builds the Gravit force kernel at the baseline and fully optimized levels,
//! shows what each of the paper's techniques changed (layout traffic,
//! instruction budget, registers, occupancy), verifies both against the CPU
//! reference, and prints the modeled 8800 GTX frame time.
//!
//! Run: `cargo run --release --example quickstart`

use gravit_app::backend::Backend;
use gravit_core::layout_advisor::{optimize_layout, StructSchema};
use gravit_core::pipeline::optimization_ladder;
use gravit_core::substrates::gpu_kernels::force::OptLevel;
use gravit_core::substrates::gpu_sim::{DeviceConfig, DriverModel};
use gravit_core::substrates::nbody::{self, model::ForceParams};
use simcore::format_duration_s;

fn main() {
    // 1. The layout advisor on Gravit's 7-float particle (Sec. IV's 3 steps).
    let plan = optimize_layout(&StructSchema::gravit_particle());
    println!("Layout advisor on the Gravit particle:");
    println!(
        "  {} aligned sub-structure arrays, {} -> {} transactions per half-warp ({}x)",
        plan.groups.len(),
        plan.baseline_transactions,
        plan.optimized_transactions,
        plan.transaction_improvement()
    );

    // 2. The optimization ladder (the Fig. 12 levels).
    println!("\nOptimization ladder (8800 GTX model):");
    let dev = DeviceConfig::g8800gtx();
    for step in optimization_ladder(&dev, DriverModel::Cuda10) {
        println!(
            "  {:<32} tile-fetch {:>3} trans, {:>5.2} instrs/elem, {:>2} regs, {:>3.0}% occupancy",
            step.level.label(),
            step.tile_fetch_transactions,
            step.instrs_per_element,
            step.regs,
            step.occupancy.percent()
        );
    }

    // 3. Physics check: the simulated-GPU kernel is bit-identical to the CPU.
    let bodies = nbody::spawn::disk_galaxy(1024, 5.0, 1.0, 1.0, 42);
    let fp = ForceParams::default();
    let cpu = Backend::CpuSerial.accelerations(&bodies, &fp);
    let gpu = Backend::GpuSim {
        level: OptLevel::Full,
        driver: DriverModel::Cuda10,
    }
    .accelerations(&bodies, &fp);
    assert_eq!(cpu, gpu);
    println!("\nGPU kernel vs CPU reference at n=1024: bit-identical ✓");

    // 4. Modeled device time, baseline vs optimized (the paper's 1.27x).
    let n = 200_000;
    let base = gravit_app::model::model_frame(OptLevel::Baseline, n, DriverModel::Cuda10);
    let full = gravit_app::model::model_frame(OptLevel::Full, n, DriverModel::Cuda10);
    println!(
        "\nModeled frame at N={n}: baseline {}, full opt {} -> {:.2}x (paper: 1.27x)",
        format_duration_s(base.total_s()),
        format_duration_s(full.total_s()),
        base.total_s() / full.total_s()
    );
}
