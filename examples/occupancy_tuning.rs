//! # Occupancy tuning — registers, block size and the 50% → 67% step
//!
//! Reproduces the paper's Sec. IV-A tuning interactively: sweeps block sizes
//! for each register budget on the occupancy calculator, runs the unroll
//! advisor, and prints why (16 regs, block 128) is the sweet spot on a
//! G80 — and what changes on a GT200.
//!
//! Run: `cargo run --release --example occupancy_tuning`

use gravit_core::substrates::gpu_sim::occupancy::occupancy;
use gravit_core::substrates::gpu_sim::DeviceConfig;
use gravit_core::substrates::particle_layouts::Layout;
use gravit_core::unroll_advisor::advise_unroll;

fn main() {
    let g80 = DeviceConfig::g8800gtx();
    println!("Occupancy on {} (smem = 16 B/thread tile):\n", g80.name);
    print!("{:>6}", "block");
    for regs in [16u32, 17, 18, 20, 24] {
        print!("{:>10}", format!("{regs} regs"));
    }
    println!();
    for block in [64u32, 96, 128, 160, 192, 256, 320, 384] {
        print!("{block:>6}");
        for regs in [16u32, 17, 18, 20, 24] {
            let o = occupancy(&g80, block, regs, block * 16);
            print!("{:>9.0}%", o.percent());
        }
        println!();
    }
    println!("\nThe paper's path: (18 regs, 192) = 50% -> unroll (17 regs) = 50%");
    println!("-> ICM (16 regs) + block 128 = 67%.");

    // The unroll advisor's view.
    let advice = advise_unroll(&g80, Layout::SoAoaS, 128, true);
    println!("\nUnroll advisor (SoAoaS, block 128, ICM on):");
    for o in &advice.options {
        println!(
            "  factor {:>3}: {:>5.2} instrs/elem, Eq.3 {:>5.3}x, {:>2} regs, {:>3.0}% occupancy",
            o.factor,
            o.instrs_per_element,
            o.eq3_speedup,
            o.regs,
            o.occupancy.percent()
        );
    }
    println!("  -> recommended factor: {}", advice.best().factor);

    // Sensitivity: the same kernel on a GT200 (the paper's future work).
    let gt200 = DeviceConfig::gtx280();
    let o = occupancy(&gt200, 128, 16, 128 * 16);
    println!(
        "\nOn {}: the same (16 regs, block 128) kernel reaches {:.0}% occupancy — \nregister pressure stops being the limiter on later devices.",
        gt200.name,
        o.percent()
    );
}
